// T-D: micro-benchmarks for the complexity claims of §4.5.
//
//  * all Algorithm-1 procedures are O(1); the receive/checkpoint handlers
//    are O(n) dominated by dependency-vector propagation;
//  * the Algorithm-3 rollback rebuild is O(n log n) with binary search over
//    the stored checkpoints, versus O(n^2) for the linear scan;
//  * the offline analyses (R-graph construction, Lemma-1 lines, Theorem-1
//    characterization) scale with the recorded history.
#include <benchmark/benchmark.h>

#include <string>
#include <utility>

#include "bench_common.hpp"

#include "causality/dependency_vector.hpp"
#include "ccp/analysis.hpp"
#include "ccp/precedence.hpp"
#include "ccp/zigzag.hpp"
#include "ckpt/protocol.hpp"
#include "ckpt/sharded_checkpoint_store.hpp"
#include "ckpt/storage_backend.hpp"
#include "core/rdt_lgc.hpp"
#include "core/uc_table.hpp"
#include "harness/sweep.hpp"
#include "harness/system.hpp"
#include "metrics/durability_lag.hpp"
#include "metrics/storage_probe.hpp"
#include "recovery/recovery_manager.hpp"
#include "workload/workload.hpp"

using namespace rdtgc;

namespace {

void BM_DvMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  causality::DependencyVector mine(n), msg(n);
  for (std::size_t j = 0; j < n; ++j) msg.at(static_cast<ProcessId>(j)) = 1;
  for (auto _ : state) {
    causality::DependencyVector dv = mine;
    benchmark::DoNotOptimize(dv.merge(msg));
  }
}
BENCHMARK(BM_DvMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_DvMergeInto(benchmark::State& state) {
  // The zero-allocation variant: same worst case (every entry raised), the
  // changed set written into a reusable scratch buffer.
  const auto n = static_cast<std::size_t>(state.range(0));
  causality::DependencyVector mine(n), msg(n);
  for (std::size_t j = 0; j < n; ++j) msg.at(static_cast<ProcessId>(j)) = 1;
  causality::ChangedSet changed(n);
  causality::DependencyVector dv = mine;
  for (auto _ : state) {
    dv = mine;  // same-size copy assignment: reuses the buffer
    dv.merge_into(msg, changed);
    benchmark::DoNotOptimize(changed.size());
  }
}
BENCHMARK(BM_DvMergeInto)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_UcTableReleaseLink(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::UcTable table(n, [](CheckpointIndex) {});
  table.new_ccb(0, 0);
  for (auto _ : state) {
    // Algorithm 2's receive pair on a rotating peer: O(1) each (§4.5).
    for (ProcessId j = 1; j < static_cast<ProcessId>(n); ++j) {
      table.release(j);
      table.link(j, 0);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_UcTableReleaseLink)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_UcTableRebind(benchmark::State& state) {
  // The same n-1 peer rebinding as BM_UcTableReleaseLink, coalesced into one
  // rebind_to pass (single ±k CCB refcount adjustment).  The self CCB is
  // swapped every iteration so each rebind really moves every peer (without
  // the swap, rebind_to's already-bound fast path would measure a no-op);
  // the swap's release+new_ccb cost is charged to the batched side.
  const auto n = static_cast<std::size_t>(state.range(0));
  core::UcTable table(n, [](CheckpointIndex) {});
  table.new_ccb(0, 0);
  std::vector<ProcessId> peers;
  for (ProcessId j = 1; j < static_cast<ProcessId>(n); ++j) peers.push_back(j);
  table.rebind_to({peers.data(), peers.size()}, 0);
  CheckpointIndex next = 1;
  for (auto _ : state) {
    table.release(0);
    table.new_ccb(0, next);  // the old CCB dies when the last peer leaves it
    next = next == 0 ? 1 : 0;
    table.rebind_to({peers.data(), peers.size()}, 0);
    benchmark::DoNotOptimize(&table);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n - 1));
}
BENCHMARK(BM_UcTableRebind)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_CheckpointPath(benchmark::State& state) {
  // Full middleware checkpoint operation (store + GC hook + DV increment).
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::SystemConfig config;
  config.process_count = n;
  config.network.manual = true;
  config.gc = harness::GcChoice::kRdtLgc;
  harness::System system(config);
  for (auto _ : state) system.node(0).take_basic_checkpoint();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointPath)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReceivePath(benchmark::State& state) {
  // Checkpoint at the sender + send + delivery at the receiver: the
  // receiver-side work is the paper's O(n) receive handler with a fresh
  // dependency every time.
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::SystemConfig config;
  config.process_count = n;
  config.network.manual = true;
  config.gc = harness::GcChoice::kRdtLgc;
  harness::System system(config);
  for (auto _ : state) {
    system.node(1).take_basic_checkpoint();
    const auto id = system.node(1).send_app_message(0);
    system.network().deliver_now(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReceivePath)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Worst-case receive at the GC layer — every delivery raises all n-1 peer
// entries right after a local checkpoint, so every UC entry rebinds and the
// abandoned checkpoint is eliminated through the store.  The Batched/PerPeer
// pair makes the old-vs-new delta of the coalesced entry point visible.
void BM_ReceiveBatch(benchmark::State& state, bool batched) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::ShardedCheckpointStore store(0);
  core::RdtLgc lgc;
  lgc.initialize(0, n, store);
  causality::DependencyVector dv(n), msg(n);
  causality::ChangedSet changed(n);
  CheckpointIndex index = 0;
  IntervalIndex tick = 0;
  store.put(ckpt::StoredCheckpoint{index, dv, 0, 1});
  lgc.on_checkpoint_stored(index);
  dv.at(0) += 1;
  for (auto _ : state) {
    ++index;
    store.put(ckpt::StoredCheckpoint{index, dv, 0, 1});
    lgc.on_checkpoint_stored(index);
    dv.at(0) += 1;
    ++tick;
    for (ProcessId j = 1; j < static_cast<ProcessId>(n); ++j)
      msg.at(j) = tick;
    if (batched) {
      dv.merge_into(msg, changed);
      lgc.on_new_dependencies(changed.span());
    } else {
      const std::vector<ProcessId> per_peer = dv.merge(msg);
      for (const ProcessId j : per_peer) lgc.on_new_dependency(j);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n - 1));
}
void BM_ReceivePathBatched(benchmark::State& state) {
  BM_ReceiveBatch(state, true);
}
void BM_ReceivePathPerPeer(benchmark::State& state) {
  BM_ReceiveBatch(state, false);
}
BENCHMARK(BM_ReceivePathBatched)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_ReceivePathPerPeer)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// ---- Protocol seam cost ---------------------------------------------------
//
// One checkpoint + send + delivery per iteration through each protocol
// behind the piggyback seam: the delta against Uncoordinated is the price
// of that protocol's on_send control fill, must_force query, and
// on_deliver merge.  FINE is the widest (n+1 control words per message);
// the scalar-clock protocols should be indistinguishable from the DV-only
// family at any n.
void BM_ProtocolSeam(benchmark::State& state, ckpt::ProtocolKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::SystemConfig config;
  config.process_count = n;
  config.network.manual = true;
  config.protocol = kind;
  config.gc = harness::GcChoice::kRdtLgc;
  harness::System system(config);
  for (auto _ : state) {
    system.node(1).take_basic_checkpoint();
    const auto id = system.node(1).send_app_message(0);
    system.network().deliver_now(id);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_ProtocolUncoordinated(benchmark::State& state) {
  BM_ProtocolSeam(state, ckpt::ProtocolKind::kUncoordinated);
}
void BM_ProtocolFdas(benchmark::State& state) {
  BM_ProtocolSeam(state, ckpt::ProtocolKind::kFdas);
}
void BM_ProtocolBcs(benchmark::State& state) {
  BM_ProtocolSeam(state, ckpt::ProtocolKind::kBcs);
}
void BM_ProtocolFine(benchmark::State& state) {
  BM_ProtocolSeam(state, ckpt::ProtocolKind::kFine);
}
BENCHMARK(BM_ProtocolUncoordinated)->Arg(4)->Arg(64)->Arg(256);
BENCHMARK(BM_ProtocolFdas)->Arg(4)->Arg(64)->Arg(256);
BENCHMARK(BM_ProtocolBcs)->Arg(4)->Arg(64)->Arg(256);
BENCHMARK(BM_ProtocolFine)->Arg(4)->Arg(64)->Arg(256);

// ---- Sharded store put/collect access patterns ---------------------------
//
// The striped/contended pair measures the stripe function's effect on the
// storage hot path itself (no GC above it):
//  * striped — consecutive checkpoint indices, the RDT-LGC live-window
//    pattern the low-bit stripe function spreads round-robin across every
//    shard, so each stripe holds batch/shard_count entries;
//  * contended — indices stepping by shard_count, so every operation lands
//    on ONE stripe: the serialized pattern sharding exists to avoid, and
//    what a contiguous-range stripe function would pay on the hot window.
// Arg is the dependency-vector width (the dominant copy cost of a put).
// Each iteration drives a 64-checkpoint batch; the opposite half of the
// churn (collects for BM_ShardedPut, puts for BM_ShardedCollect) runs with
// timing paused, which also re-primes every stripe's recycled spare buffer
// so the measured half stays allocation-free.

constexpr int kShardedBatch = 64;

void BM_ShardedPut(benchmark::State& state, CheckpointIndex stride) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::ShardedCheckpointStore store(0);
  causality::DependencyVector dv(n);
  auto put_batch = [&] {
    CheckpointIndex next = 0;
    for (int k = 0; k < kShardedBatch; ++k, next += stride)
      store.put(next, dv, 0, 1);
  };
  auto collect_batch = [&] {
    CheckpointIndex next = 0;
    for (int k = 0; k < kShardedBatch; ++k, next += stride)
      store.collect(next);
  };
  put_batch();      // warm the per-shard vector capacities
  collect_batch();  // prime the per-shard spare recyclers; store is empty
  for (auto _ : state) {
    put_batch();  // timed: copy-in puts into recycled per-shard buffers
    state.PauseTiming();
    collect_batch();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kShardedBatch);
}
void BM_ShardedPutStriped(benchmark::State& state) {
  BM_ShardedPut(state, 1);
}
void BM_ShardedPutContended(benchmark::State& state) {
  BM_ShardedPut(
      state,
      static_cast<CheckpointIndex>(
          ckpt::ShardedCheckpointStore::kDefaultShardCount));
}
BENCHMARK(BM_ShardedPutStriped)->Arg(4)->Arg(64)->Arg(256);
BENCHMARK(BM_ShardedPutContended)->Arg(4)->Arg(64)->Arg(256);

void BM_ShardedCollect(benchmark::State& state, CheckpointIndex stride) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::ShardedCheckpointStore store(0);
  causality::DependencyVector dv(n);
  auto put_batch = [&] {
    CheckpointIndex next = 0;
    for (int k = 0; k < kShardedBatch; ++k, next += stride)
      store.put(next, dv, 0, 1);
  };
  put_batch();
  for (auto _ : state) {
    // Oldest-first elimination order, as collectors produce: the contended
    // stripe pays a long erase-shift per collect, the striped ones short.
    CheckpointIndex next = 0;
    for (int k = 0; k < kShardedBatch; ++k, next += stride)
      store.collect(next);
    state.PauseTiming();
    put_batch();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kShardedBatch);
}
void BM_ShardedCollectStriped(benchmark::State& state) {
  BM_ShardedCollect(state, 1);
}
void BM_ShardedCollectContended(benchmark::State& state) {
  BM_ShardedCollect(
      state,
      static_cast<CheckpointIndex>(
          ckpt::ShardedCheckpointStore::kDefaultShardCount));
}
BENCHMARK(BM_ShardedCollectStriped)->Arg(4)->Arg(64)->Arg(256);
BENCHMARK(BM_ShardedCollectContended)->Arg(4)->Arg(64)->Arg(256);

// Striped-mode (locked) variants of the put/collect churn: the same
// single-threaded access patterns with the per-stripe spinlocks armed, so
// the uncontended locking overhead of StoreConcurrency::kStriped is visible
// as a delta against the unsynchronized families above.
void BM_ShardedChurnMode(benchmark::State& state,
                         ckpt::StoreConcurrency concurrency) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::ShardedCheckpointStore store(
      0, ckpt::ShardedCheckpointStore::kDefaultShardCount, concurrency);
  causality::DependencyVector dv(n);
  CheckpointIndex next = 0;
  const CheckpointIndex window =
      static_cast<CheckpointIndex>(2 * store.shard_count());
  for (; next < window; ++next) store.put(next, dv, 0, 1);
  for (CheckpointIndex g = 0; g < window / 2; ++g) store.collect(g);
  for (auto _ : state) {
    for (int k = 0; k < kShardedBatch; ++k) {
      store.put(next, dv, 0, 1);
      store.collect(next - window / 2);
      ++next;
    }
  }
  state.SetItemsProcessed(state.iterations() * kShardedBatch);
}
void BM_ShardedChurnUnsynchronized(benchmark::State& state) {
  BM_ShardedChurnMode(state, ckpt::StoreConcurrency::kUnsynchronized);
}
void BM_ShardedChurnStripedLocked(benchmark::State& state) {
  BM_ShardedChurnMode(state, ckpt::StoreConcurrency::kStriped);
}
BENCHMARK(BM_ShardedChurnUnsynchronized)->Arg(4)->Arg(64)->Arg(256);
BENCHMARK(BM_ShardedChurnStripedLocked)->Arg(4)->Arg(64)->Arg(256);

// ---- Storage-backend families --------------------------------------------
//
// The same sliding-window churn as BM_ShardedChurn*, and the reopen+recover
// cycle of a restart, per persistence backend (ckpt/storage_backend.hpp):
// the deltas against the in-memory families price what durability costs on
// the hot path, and the recover families price the recovery path itself —
// the figure the rollback analyses care about.  Media live under TMPDIR
// (point it at a tmpfs to bench the store, not the disk).

ckpt::StorageConfig backend_config(ckpt::StorageBackendKind kind) {
  ckpt::StorageConfig config;
  config.kind = kind;
  if (kind != ckpt::StorageBackendKind::kInMemory)
    config.directory = bench::scratch_dir("run");
  return config;
}

void BM_BackendChurn(benchmark::State& state, ckpt::StorageBackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::ShardedCheckpointStore store(
      0, ckpt::ShardedCheckpointStore::kDefaultShardCount,
      ckpt::StoreConcurrency::kUnsynchronized, backend_config(kind));
  causality::DependencyVector dv(n);
  CheckpointIndex next = 0;
  const CheckpointIndex window =
      static_cast<CheckpointIndex>(2 * store.shard_count());
  for (; next < window; ++next) store.put(next, dv, 0, 1);
  for (CheckpointIndex g = 0; g < window / 2; ++g) store.collect(g);
  for (auto _ : state) {
    for (int k = 0; k < kShardedBatch; ++k) {
      store.put(next, dv, 0, 1);
      store.collect(next - window / 2);
      ++next;
    }
  }
  state.SetItemsProcessed(state.iterations() * kShardedBatch);
}
void BM_BackendChurnMemory(benchmark::State& state) {
  BM_BackendChurn(state, ckpt::StorageBackendKind::kInMemory);
}
void BM_BackendChurnMmap(benchmark::State& state) {
  BM_BackendChurn(state, ckpt::StorageBackendKind::kMmapFile);
}
void BM_BackendChurnLog(benchmark::State& state) {
  BM_BackendChurn(state, ckpt::StorageBackendKind::kLogStructured);
}
BENCHMARK(BM_BackendChurnMemory)->Arg(4)->Arg(64);
BENCHMARK(BM_BackendChurnMmap)->Arg(4)->Arg(64);
BENCHMARK(BM_BackendChurnLog)->Arg(4)->Arg(64);

// ---- Durability-pipeline families ----------------------------------------
//
// What group commit buys on the persistent hot path.  The same sliding-
// window churn shape as BM_BackendChurn at DV width 64, on a SINGLE-stripe
// store — the pipeline coalesces per stripe, and round-robin striping would
// spread every window over all stripes and measure the stripe function
// instead (that interaction is BM_BackendChurn*'s job).  The durability
// policy is the swept dimension:
//  * BM_GroupCommit{Log,Mmap} — Arg is every_k: 0 is the synchronous
//    baseline the pipeline replaces — kSync write-through plus a
//    durability point (flush: fsync/msync) after EVERY op, i.e. "durable
//    when acknowledged" paid inline; k >= 1 batches k ops into one
//    coalesced emit + durability point per touched stripe.  The /0 vs /16
//    ratio is the headline per-op saving of the pipeline.  These families
//    block on media, so wall clock (UseRealTime) is the figure of merit —
//    cpu_time would hide exactly the wait the pipeline removes;
//  * BM_BackgroundChurn{Log,Mmap} — the same churn under kBackground: the
//    producer only records into the ring, the writer thread pays the media
//    off-path, so this family prices the acknowledged (caller-visible)
//    cost when media latency is hidden entirely;
//  * BM_DurabilityLag — one probe sweep (metrics/durability_lag.hpp) over a
//    fleet of Arg pipelined nodes: the observability tax per sample.

ckpt::StorageConfig durability_config(ckpt::StorageBackendKind kind,
                                      ckpt::DurabilityPolicy policy) {
  ckpt::StorageConfig config = backend_config(kind);
  config.durability = policy;
  return config;
}

void BM_DurabilityChurn(benchmark::State& state,
                        ckpt::StorageBackendKind kind,
                        ckpt::DurabilityPolicy policy) {
  // kSync alone is write-through without durability points; the honest
  // synchronous baseline flushes after every op so each one is durable
  // when it returns — the blocking cost group commit amortizes.
  const bool flush_per_op = policy.mode == ckpt::DurabilityMode::kSync;
  ckpt::ShardedCheckpointStore store(0, /*shard_count=*/1,
                                     ckpt::StoreConcurrency::kUnsynchronized,
                                     durability_config(kind, policy));
  causality::DependencyVector dv(64);
  CheckpointIndex next = 0;
  constexpr CheckpointIndex window = 128;  // live set, 2x the widest every_k
  for (; next < window; ++next) store.put(next, dv, 0, 1);
  for (CheckpointIndex g = 0; g < window / 2; ++g) store.collect(g);
  store.flush();  // start every policy from a quiesced medium
  for (auto _ : state) {
    for (int k = 0; k < kShardedBatch; ++k) {
      store.put(next, dv, 0, 1);
      if (flush_per_op) store.flush();
      store.collect(next - window / 2);
      if (flush_per_op) store.flush();
      ++next;
    }
  }
  state.SetItemsProcessed(state.iterations() * kShardedBatch);
}

ckpt::DurabilityPolicy group_commit_arg(std::int64_t every_k) {
  return every_k == 0
             ? ckpt::DurabilityPolicy::Sync()
             : ckpt::DurabilityPolicy::GroupCommit(
                   static_cast<std::size_t>(every_k));
}
void BM_GroupCommitLog(benchmark::State& state) {
  BM_DurabilityChurn(state, ckpt::StorageBackendKind::kLogStructured,
                     group_commit_arg(state.range(0)));
}
void BM_GroupCommitMmap(benchmark::State& state) {
  BM_DurabilityChurn(state, ckpt::StorageBackendKind::kMmapFile,
                     group_commit_arg(state.range(0)));
}
BENCHMARK(BM_GroupCommitLog)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->UseRealTime();
BENCHMARK(BM_GroupCommitMmap)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->UseRealTime();

void BM_BackgroundChurnLog(benchmark::State& state) {
  BM_DurabilityChurn(
      state, ckpt::StorageBackendKind::kLogStructured,
      ckpt::DurabilityPolicy::Background(
          static_cast<std::size_t>(state.range(0))));
}
void BM_BackgroundChurnMmap(benchmark::State& state) {
  BM_DurabilityChurn(
      state, ckpt::StorageBackendKind::kMmapFile,
      ckpt::DurabilityPolicy::Background(
          static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_BackgroundChurnLog)->Arg(32)->UseRealTime();
BENCHMARK(BM_BackgroundChurnMmap)->Arg(32)->UseRealTime();

void BM_DurabilityLag(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  harness::SystemConfig config;
  config.process_count = n;
  config.gc = harness::GcChoice::kRdtLgc;
  config.node.storage =
      durability_config(ckpt::StorageBackendKind::kLogStructured,
                        ckpt::DurabilityPolicy::Background(32));
  harness::System system(config);
  workload::WorkloadConfig wl;
  wl.seed = 11;
  workload::WorkloadDriver driver(system.simulator(), system.node_provider(),
                                  n, wl);
  driver.start(1500);
  system.simulator().run();
  metrics::DurabilityLag lag(system.simulator(),
                             std::as_const(system).node_ptrs());
  for (auto _ : state) {
    lag.sample();
    benchmark::DoNotOptimize(lag.peak_lag_ops());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DurabilityLag)->Arg(4)->Arg(16);

// Reopen-from-disk cost: Arg live checkpoints survive (after a churn that
// also left an equal measure of dead records/slots on the medium, as a real
// GC would); each iteration attaches to the media and runs the full
// recover() rebuild — the storage half of an Algorithm-3 restart.
void BM_RollbackRecover(benchmark::State& state,
                        ckpt::StorageBackendKind kind) {
  const auto live = static_cast<CheckpointIndex>(state.range(0));
  ckpt::StorageConfig config = backend_config(kind);
  {
    ckpt::ShardedCheckpointStore store(
        0, ckpt::ShardedCheckpointStore::kDefaultShardCount,
        ckpt::StoreConcurrency::kUnsynchronized, config);
    causality::DependencyVector dv(8);
    for (CheckpointIndex i = 0; i < 2 * live; ++i) store.put(i, dv, 0, 1);
    for (CheckpointIndex g = 0; g < live; ++g) store.collect(g);
    store.flush();
  }
  config.open_mode = ckpt::OpenMode::kAttach;
  for (auto _ : state) {
    ckpt::ShardedCheckpointStore store(
        0, ckpt::ShardedCheckpointStore::kDefaultShardCount,
        ckpt::StoreConcurrency::kUnsynchronized, config);
    benchmark::DoNotOptimize(store.recover());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(live));
}
void BM_RollbackRecoverMmap(benchmark::State& state) {
  BM_RollbackRecover(state, ckpt::StorageBackendKind::kMmapFile);
}
void BM_RollbackRecoverLog(benchmark::State& state) {
  BM_RollbackRecover(state, ckpt::StorageBackendKind::kLogStructured);
}
BENCHMARK(BM_RollbackRecoverMmap)->Arg(64)->Arg(512);
BENCHMARK(BM_RollbackRecoverLog)->Arg(64)->Arg(512);

// ---- Warm-restart families ------------------------------------------------
//
// The middleware half on top of BM_RollbackRecover: a whole ckpt::Node dies
// and its replacement attaches to the same media (OpenMode::kAttach through
// harness::System::restart_node).  BM_NodeAttach isolates the attach itself
// — store recover, per-checkpoint certification against the recorder, UC
// rebuild — scaled by Arg surviving checkpoints (GC off, no messages).
// BM_ChurnRestart prices one full kill/reopen/rejoin churn cycle under
// FDAS + RDT-LGC with a real communication history: restart plus the
// recovery session that rejoins the fleet.

void BM_NodeAttach(benchmark::State& state, ckpt::StorageBackendKind kind) {
  const auto live = static_cast<std::int64_t>(state.range(0));
  harness::SystemConfig config;
  config.process_count = 2;
  config.gc = harness::GcChoice::kNone;  // every checkpoint survives
  config.node.storage = backend_config(kind);
  harness::System system(config);
  for (std::int64_t k = 1; k < live; ++k) {
    system.simulator().run_until(system.simulator().now() + 1);
    system.node(0).take_basic_checkpoint();
  }
  for (auto _ : state) {
    system.restart_node(0);
    benchmark::DoNotOptimize(system.node(0).current_interval());
  }
  state.SetItemsProcessed(state.iterations() * live);
}
void BM_NodeAttachMmap(benchmark::State& state) {
  BM_NodeAttach(state, ckpt::StorageBackendKind::kMmapFile);
}
void BM_NodeAttachLog(benchmark::State& state) {
  BM_NodeAttach(state, ckpt::StorageBackendKind::kLogStructured);
}
BENCHMARK(BM_NodeAttachMmap)->Arg(16)->Arg(128);
BENCHMARK(BM_NodeAttachLog)->Arg(16)->Arg(128);

void BM_ChurnRestart(benchmark::State& state,
                     ckpt::StorageBackendKind kind) {
  constexpr std::size_t kProcesses = 4;
  harness::SystemConfig config;
  config.process_count = kProcesses;
  config.gc = harness::GcChoice::kRdtLgc;
  config.node.storage = backend_config(kind);
  harness::System system(config);
  workload::WorkloadConfig wl;
  wl.seed = 5;
  workload::WorkloadDriver driver(system.simulator(), system.node_provider(),
                                  kProcesses, wl);
  driver.start(2000);
  system.simulator().run();
  recovery::RecoveryManager manager(system.simulator(), system.network(),
                                    system.recorder(),
                                    system.node_provider(), {});
  ProcessId p = 0;
  for (auto _ : state) {
    system.restart_node(p);
    const auto outcome = manager.recover({p});
    benchmark::DoNotOptimize(outcome.line.data());
    p = static_cast<ProcessId>((p + 1) % kProcesses);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_ChurnRestartMmap(benchmark::State& state) {
  BM_ChurnRestart(state, ckpt::StorageBackendKind::kMmapFile);
}
void BM_ChurnRestartLog(benchmark::State& state) {
  BM_ChurnRestart(state, ckpt::StorageBackendKind::kLogStructured);
}
BENCHMARK(BM_ChurnRestartMmap);
BENCHMARK(BM_ChurnRestartLog);

void rollback_setup(std::size_t n, ckpt::ShardedCheckpointStore& store,
                    core::RdtLgc& lgc) {
  lgc.initialize(0, n, store);
  for (std::size_t k = 0; k < n; ++k) {
    causality::DependencyVector dv(n);
    // dv[f] jumps from 0 to 2 after index f: each peer pins a distinct
    // checkpoint, the worst case for the rebuild.
    for (ProcessId f = 1; f < static_cast<ProcessId>(n); ++f)
      dv.at(f) = (static_cast<ProcessId>(k) > f) ? 2 : 0;
    store.put(ckpt::StoredCheckpoint{static_cast<CheckpointIndex>(k), dv, 0, 1});
    lgc.on_checkpoint_stored(static_cast<CheckpointIndex>(k));
    // A fresh dependency from a distinct peer pins this checkpoint, so the
    // store keeps all n checkpoints (the Figure-5 worst case).
    if (k + 1 < n) lgc.on_new_dependency(static_cast<ProcessId>(k + 1));
  }
}

void BM_RollbackRebuild(benchmark::State& state, core::RdtLgc::RollbackSearch
                                                     search) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ckpt::ShardedCheckpointStore store(0);
  core::RdtLgc lgc(search);
  rollback_setup(n, store, lgc);
  causality::DependencyVector dv(n);
  for (ProcessId f = 0; f < static_cast<ProcessId>(n); ++f) dv.at(f) = 1;
  const ckpt::RollbackInfo info{static_cast<CheckpointIndex>(n - 1),
                                std::nullopt};
  lgc.on_rollback(info, dv);  // warm-up: reach the steady pinned state
  for (auto _ : state) lgc.on_rollback(info, dv);
  state.SetItemsProcessed(state.iterations());
}
void BM_RollbackBinary(benchmark::State& state) {
  BM_RollbackRebuild(state, core::RdtLgc::RollbackSearch::kBinary);
}
void BM_RollbackLinear(benchmark::State& state) {
  BM_RollbackRebuild(state, core::RdtLgc::RollbackSearch::kLinear);
}
BENCHMARK(BM_RollbackBinary)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_RollbackLinear)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

/// One recorded history shared by the analysis benchmarks.
const harness::System& recorded_run() {
  static harness::System* system = [] {
    auto* s = new harness::System([] {
      harness::SystemConfig config;
      config.process_count = 8;
      config.gc = harness::GcChoice::kNone;
      return config;
    }());
    workload::WorkloadConfig wl;
    workload::WorkloadDriver driver(s->simulator(), s->node_ptrs(), wl);
    driver.start(4000);
    s->simulator().run();
    return s;
  }();
  return *system;
}

void BM_ZigzagAnalysisBuild(benchmark::State& state) {
  const auto& system = recorded_run();
  for (auto _ : state) {
    ccp::ZigzagAnalysis zigzag(system.recorder());
    benchmark::DoNotOptimize(zigzag.node_count());
  }
}
BENCHMARK(BM_ZigzagAnalysisBuild);

void BM_CausalGraphBuild(benchmark::State& state) {
  const auto& system = recorded_run();
  for (auto _ : state) {
    ccp::CausalGraph causal(system.recorder());
    benchmark::DoNotOptimize(&causal);
  }
}
BENCHMARK(BM_CausalGraphBuild);

void BM_RecoveryLineLemma1(benchmark::State& state) {
  const auto& system = recorded_run();
  const ccp::DvPrecedence causal(system.recorder());
  std::vector<bool> faulty(8, false);
  faulty[3] = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ccp::recovery_line_lemma1(system.recorder(), causal, faulty));
}
BENCHMARK(BM_RecoveryLineLemma1);

void BM_Theorem1Characterization(benchmark::State& state) {
  const auto& system = recorded_run();
  const ccp::DvPrecedence causal(system.recorder());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ccp::obsolete_theorem1(system.recorder(), causal));
}
BENCHMARK(BM_Theorem1Characterization);

// ---- FleetRunner thread scaling ------------------------------------------
//
// A 32-seed sweep of a small RDT-LGC simulation (the determinism-test
// workload) across 1/2/4/8 workers.  Wall-clock (UseRealTime) is the figure
// of merit: the sweep is embarrassingly parallel, so on a k-core host the
// 8-worker family should approach min(k, 8)x the 1-worker family.  The pool
// is built once per family; each iteration dispatches one whole batch, so
// batch setup/teardown (queue dealing, wakeup, join) is charged to the
// measurement exactly as a driver pays it.
void BM_FleetRunner(benchmark::State& state) {
  harness::FleetRunner fleet(
      {.workers = static_cast<std::size_t>(state.range(0))});
  const std::vector<std::uint64_t> seeds = harness::seed_range(100, 32);
  const auto body = [](std::uint64_t seed,
                       harness::WorkerContext&) -> harness::SweepRun {
    harness::SystemConfig config;
    config.process_count = 4;
    config.gc = harness::GcChoice::kRdtLgc;
    config.seed = seed;
    harness::System system(config);
    workload::WorkloadConfig wl;
    wl.seed = seed * 31 + 7;
    workload::WorkloadDriver driver(system.simulator(), system.node_ptrs(),
                                    wl);
    driver.start(1500);
    metrics::StorageProbe probe(system.simulator(),
                                std::as_const(system).node_ptrs());
    probe.start(25, 1500);
    system.simulator().run();
    harness::SweepRun run;
    run.storage = probe.global_series().stat();
    run.final_storage = static_cast<double>(system.total_stored());
    run.collected = system.total_collected();
    return run;
  };
  for (auto _ : state) {
    const std::vector<harness::SweepRun> runs =
        harness::run_seed_sweep(fleet, seeds, body);
    benchmark::DoNotOptimize(runs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(BM_FleetRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

}  // namespace

// main() is supplied by benchmark::benchmark_main (see bench/CMakeLists.txt).
