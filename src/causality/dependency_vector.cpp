#include "causality/dependency_vector.hpp"

#include "util/check.hpp"

namespace rdtgc::causality {

IntervalIndex DependencyVector::operator[](ProcessId p) const {
  RDTGC_EXPECTS(p >= 0 && static_cast<std::size_t>(p) < entries_.size());
  return entries_[static_cast<std::size_t>(p)];
}

IntervalIndex& DependencyVector::at(ProcessId p) {
  RDTGC_EXPECTS(p >= 0 && static_cast<std::size_t>(p) < entries_.size());
  return entries_[static_cast<std::size_t>(p)];
}

bool DependencyVector::has_new_dependency_from(
    const DependencyVector& m) const {
  RDTGC_EXPECTS(m.size() == size());
  for (std::size_t j = 0; j < entries_.size(); ++j)
    if (m.entries_[j] > entries_[j]) return true;
  return false;
}

std::vector<ProcessId> DependencyVector::new_dependencies_from(
    const DependencyVector& m) const {
  RDTGC_EXPECTS(m.size() == size());
  std::vector<ProcessId> out;
  for (std::size_t j = 0; j < entries_.size(); ++j)
    if (m.entries_[j] > entries_[j]) out.push_back(static_cast<ProcessId>(j));
  return out;
}

std::vector<ProcessId> DependencyVector::merge(const DependencyVector& m) {
  RDTGC_EXPECTS(m.size() == size());
  std::vector<ProcessId> changed;
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    if (m.entries_[j] > entries_[j]) {
      entries_[j] = m.entries_[j];
      changed.push_back(static_cast<ProcessId>(j));
    }
  }
  return changed;
}

std::string DependencyVector::to_string() const {
  std::string out = "(";
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    if (j) out += ", ";
    out += std::to_string(entries_[j]);
  }
  out += ")";
  return out;
}

}  // namespace rdtgc::causality
