// Log-structured persistence for one checkpoint-store stripe.
//
// The medium is an append-only operation log:
//
//   ┌────────────────────────────────────────────────────────────────┐
//   │ LogHeader   magic, version, owner, dv_width,                   │
//   │             baseline_records, baseline StoreStats              │
//   ├────────────────────────────────────────────────────────────────┤
//   │ record 0    magic | type | index | stored_at | bytes [| dv…]   │
//   │ record 1    …   (kPut records carry the dependency vector)     │
//   └────────────────────────────────────────────────────────────────┘
//
// Every mutation appends one record (pwrite at the tracked tail — never
// seeks, never rewrites): a put() appends the checkpoint with its DV, an
// Algorithm-2 elimination appends a kCollect tombstone that marks the put
// record dead, a rollback appends one kDiscard record covering its whole
// suffix.  Dead weight therefore accumulates until the compaction pass
// runs: when the log holds at least `compact_min_records` records and the
// dead fraction (1 − live/records) reaches `compact_dead_ratio`, the live
// records are rewritten in ascending index order behind a fresh header into
// `path.tmp`, fsync'd, and atomically renamed over the log — the truncation
// step of a log-structured store.  The GC drives compaction indirectly:
// eliminations are what create dead records, so a collector that reclaims
// more (RDT-LGC at the Theorem-1 optimum) also compacts the log harder.
//
// The rewritten prefix is remembered in the header as `baseline_records`
// together with a snapshot of the lifetime counters at compaction time:
// recover() replays the baseline puts, restores the snapshot (replaying a
// rewritten live set must not recount history), then replays the remaining
// records one by one — reconstructing indices, DVs, stats, and peaks
// exactly.  A torn tail (partial final record after a crash) is detected by
// record magic/length and truncated away.
//
// Reads are served by a full in-memory CheckpointStore mirror, as in the
// mmap backend.  The DV width is fixed per stripe at the first put().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causality/dependency_vector.hpp"
#include "causality/types.hpp"
#include "ckpt/checkpoint_store.hpp"
#include "ckpt/storage_backend.hpp"

namespace rdtgc::ckpt {

class LogStructuredBackend final : public StorageBackend {
 public:
  /// Opens (kFresh: truncates; kAttach: recover() required before mutating)
  /// the log at `path`.  Throws util::IoError when the file cannot be
  /// created/opened.
  LogStructuredBackend(ProcessId owner, std::string path, OpenMode mode,
                       std::size_t compact_min_records,
                       double compact_dead_ratio);
  ~LogStructuredBackend() override;

  ProcessId owner() const override { return mem_.owner(); }
  StorageBackendKind kind() const override {
    return StorageBackendKind::kLogStructured;
  }

  void put(StoredCheckpoint checkpoint) override;
  void put(CheckpointIndex index, const causality::DependencyVector& dv,
           SimTime stored_at, std::uint64_t bytes) override;
  bool contains(CheckpointIndex index) const override {
    return mem_.contains(index);
  }
  const StoredCheckpoint& get(CheckpointIndex index) const override {
    return mem_.get(index);
  }
  causality::DvView dv_view(CheckpointIndex index) const override {
    return mem_.dv_view(index);
  }
  void collect(CheckpointIndex index) override;
  std::size_t discard_after(CheckpointIndex ri) override;
  const std::vector<CheckpointIndex>& stored_indices() const override {
    return mem_.stored_indices();
  }
  CheckpointIndex last_index() const override { return mem_.last_index(); }
  std::size_t count() const override { return mem_.count(); }
  std::uint64_t bytes() const override { return mem_.bytes(); }
  const StoreStats& stats() const override { return mem_.stats(); }

  std::size_t recover() override;
  /// fsync the log (the durability point).  Skipped entirely when nothing
  /// was written since the last flush (the dirty flag; see fsyncs()).
  void flush() override;

  /// Coalesced batch: between begin_batch() and end_batch() appended
  /// records accumulate in memory, and end_batch() writes the whole window
  /// with ONE pwrite (+ one fsync when durable) — the group-commit fast
  /// path.  A compaction inside the batch simply discards the buffer: the
  /// mirror already reflects every buffered record, and compaction
  /// serializes the mirror wholesale.
  void begin_batch() override;
  void end_batch(bool durable) override;

  // ---- Introspection (tests, benches) ----

  /// Records currently in the log (baseline + appended since).
  std::uint64_t log_records() const { return log_records_; }
  /// Put records rewritten by the last compaction (0 before the first).
  std::uint64_t baseline_records() const { return baseline_records_; }
  /// Compaction passes run over this object's lifetime.
  std::uint64_t compactions() const { return compactions_; }
  /// flush() fsync syscalls actually issued (dirty-flag skips excluded).
  std::uint64_t fsyncs() const { return fsyncs_; }
  const std::string& path() const { return path_; }

 private:
  struct LogHeader;
  struct RecordHeader;

  void open_fresh();
  void ensure_width(std::size_t width);
  /// Serialize and append one record at the tail (scratch_ reused).
  void append_record(std::uint16_t type, CheckpointIndex index,
                     SimTime stored_at, std::uint64_t bytes,
                     const causality::DependencyVector* dv);
  /// Rewrite live records behind a fresh header when the dead fraction
  /// crossed the threshold.
  void maybe_compact();
  void compact();

  CheckpointStore mem_;  ///< in-memory mirror serving all reads
  std::string path_;
  int fd_ = -1;
  std::uint64_t end_offset_ = 0;  ///< append position (no O_APPEND: see .cpp)
  std::uint64_t log_records_ = 0;
  std::uint64_t baseline_records_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t compact_min_records_;
  double compact_dead_ratio_;
  std::uint32_t dv_width_ = kWidthUnset;
  std::uint64_t fsyncs_ = 0;
  bool pending_recover_ = false;
  /// Unsynced bytes reached the medium since the last successful flush().
  bool dirty_ = false;
  /// Inside a begin_batch()/end_batch() bracket: appends buffer into
  /// batch_ instead of pwriting.
  bool batching_ = false;
  std::vector<std::byte> scratch_;  ///< reusable record serialization buffer
  std::vector<std::byte> batch_;    ///< coalesced records awaiting one pwrite

  static constexpr std::uint32_t kWidthUnset = 0xffffffffu;
};

}  // namespace rdtgc::ckpt
