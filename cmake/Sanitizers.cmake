# Address + UndefinedBehavior sanitizer toggles for the whole tree.
# Applied globally (not per-target) so the GTest/benchmark dependencies are
# instrumented consistently with the library — mixing instrumented and
# uninstrumented archives produces false positives on container overflow.
function(rdtgc_enable_sanitizers)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(WARNING "RDTGC_SANITIZE requested but ${CMAKE_CXX_COMPILER_ID} "
                    "is not a known sanitizer-capable compiler; ignoring.")
    return()
  endif()
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endfunction()
