// Storage-backend contract tests: every persistence backend behind the
// ckpt::StorageBackend trait — in-memory flat (the reference), sharded
// in-memory, mmap'd segment, log-structured — is driven through the shared
// test::RandomStoreTrace harness and must present bit-identical observable
// state (indices, counters, stats, DV contents), including across
// mid-trace reopens and after crash-style drops reopened via recover().
//
// The recovery tests close the loop to the paper: a full system run
// persists through a backend, the stores are reopened from disk alone, and
// the reconstructed recovery line and retained sets are checked against the
// Lemma-1 / Theorem-1 oracles computed from the recorded CCP.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "ccp/analysis.hpp"
#include "ccp/precedence.hpp"
#include "ckpt/checkpoint_store.hpp"
#include "ckpt/log_backend.hpp"
#include "ckpt/mmap_backend.hpp"
#include "ckpt/sharded_checkpoint_store.hpp"
#include "ckpt/storage_backend.hpp"
#include "helpers.hpp"
#include "recovery/recovery_manager.hpp"
#include "util/check.hpp"
#include "util/mapped_file.hpp"
#include "util/rng.hpp"

namespace rdtgc {
namespace {

using ckpt::CheckpointStore;
using ckpt::OpenMode;
using ckpt::ShardedCheckpointStore;
using ckpt::StorageBackendKind;
using ckpt::StorageConfig;
using test::RandomStoreTrace;
using test::ScratchDir;

StorageConfig persistent_config(StorageBackendKind kind,
                                const std::string& directory) {
  StorageConfig config;
  config.kind = kind;
  config.directory = directory;
  // Small knobs so a 400-op trace exercises segment growth and log
  // compaction, not just the happy path.
  config.initial_slots = 2;
  config.compact_min_records = 16;
  // The CI forced-policy leg re-runs this whole suite with the async
  // durability pipeline on (RDTGC_FORCE_DURABILITY=group|background).
  return test::with_forced_durability(config);
}

/// Whether the forced-policy leg put an async pipeline under the stores.
/// Unclean-drop expectations change: a pipelined store dropped mid-window
/// recovers a consistent PREFIX, not the full acknowledged state.
bool forced_async_durability() {
  const auto forced = test::forced_durability();
  return forced.has_value() && forced->mode != ckpt::DurabilityMode::kSync;
}

// ---- One trace, four backends, equal after every op -----------------------

/// The tentpole property: an identical randomized schedule through the flat
/// reference, the sharded in-memory store, the mmap backend, and the
/// log-structured backend yields identical observable state after every
/// operation.  `reopen_probability > 0` additionally drops and reopens the
/// persistent stores at random points (recover() mid-schedule), alternating
/// clean flushes with unclean drops.
void run_four_backend_trace(std::size_t shard_count, std::uint64_t seed,
                            double reopen_probability) {
  const RandomStoreTrace trace(seed);
  CheckpointStore flat(5);
  ShardedCheckpointStore memory(5, shard_count);

  ScratchDir mmap_dir("mmap_eq");
  ScratchDir log_dir("log_eq");
  StorageConfig mmap_cfg =
      persistent_config(StorageBackendKind::kMmapFile, mmap_dir.path());
  StorageConfig log_cfg =
      persistent_config(StorageBackendKind::kLogStructured, log_dir.path());
  auto mmap_store = std::make_unique<ShardedCheckpointStore>(
      5, shard_count, ckpt::StoreConcurrency::kUnsynchronized, mmap_cfg);
  auto log_store = std::make_unique<ShardedCheckpointStore>(
      5, shard_count, ckpt::StoreConcurrency::kUnsynchronized, log_cfg);
  mmap_cfg.open_mode = OpenMode::kAttach;
  log_cfg.open_mode = OpenMode::kAttach;

  util::Rng reopen_rng(seed ^ 0x5ca7c4d1ull);
  bool clean = false;
  for (const RandomStoreTrace::Op& op : trace.ops()) {
    trace.apply(op, flat);
    trace.apply(op, memory);
    trace.apply(op, *mmap_store);
    trace.apply(op, *log_store);
    test::expect_stores_equal(flat, memory);
    test::expect_stores_equal(flat, *mmap_store);
    test::expect_stores_equal(flat, *log_store);
    if (::testing::Test::HasFatalFailure()) return;

    if (reopen_probability > 0 && reopen_rng.bernoulli(reopen_probability)) {
      // Reopen-from-disk in the middle of the schedule, alternating a clean
      // close (flush) with a crash-style drop.  Under a forced async policy
      // every reopen flushes — an unclean drop would recover a prefix and
      // diverge from the flat reference; the mid-window-kill contract has
      // its own tests in durability_test.cpp.
      clean = !clean;
      if (clean || forced_async_durability()) {
        mmap_store->flush();
        log_store->flush();
      }
      mmap_store.reset();
      log_store.reset();
      mmap_store = std::make_unique<ShardedCheckpointStore>(
          5, shard_count, ckpt::StoreConcurrency::kUnsynchronized, mmap_cfg);
      log_store = std::make_unique<ShardedCheckpointStore>(
          5, shard_count, ckpt::StoreConcurrency::kUnsynchronized, log_cfg);
      ASSERT_EQ(mmap_store->recover(), flat.count());
      ASSERT_EQ(log_store->recover(), flat.count());
      test::expect_stores_equal(flat, *mmap_store);
      test::expect_stores_equal(flat, *log_store);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(BackendEquivalence, AllBackendsMatchFlatReferenceOnRandomizedTraces) {
  run_four_backend_trace(1, 20260726, 0.0);
  run_four_backend_trace(ShardedCheckpointStore::kDefaultShardCount, 97, 0.0);
  run_four_backend_trace(16, 7, 0.0);
}

TEST(BackendEquivalence, MidTraceReopenSchedulesKeepEquivalence) {
  run_four_backend_trace(ShardedCheckpointStore::kDefaultShardCount, 41, 0.05);
  run_four_backend_trace(1, 13, 0.08);
}

// ---- Crash-style recovery at the trace level ------------------------------

void run_crash_recovery(StorageBackendKind kind, bool clean,
                        std::uint64_t seed) {
  const RandomStoreTrace trace(seed);
  CheckpointStore flat(2);
  ScratchDir dir("crash");
  StorageConfig config = persistent_config(kind, dir.path());
  auto store = std::make_unique<ShardedCheckpointStore>(
      2, ShardedCheckpointStore::kDefaultShardCount,
      ckpt::StoreConcurrency::kUnsynchronized, config);
  trace.replay(flat);
  trace.replay(*store);
  if (clean) store->flush();
  store.reset();  // clean=false models a crash: no durability point ran

  config.open_mode = OpenMode::kAttach;
  ShardedCheckpointStore reopened(
      2, ShardedCheckpointStore::kDefaultShardCount,
      ckpt::StoreConcurrency::kUnsynchronized, config);
  if (!clean && forced_async_durability()) {
    // Crash mid-window under the forced pipeline: the acknowledged tail is
    // gone, but what recovers must be a consistent prefix of the schedule.
    reopened.recover();
    test::expect_consistent_prefix(trace, reopened, trace.ops().size());
    return;
  }
  ASSERT_EQ(reopened.recover(), flat.count());
  test::expect_stores_equal(flat, reopened);
}

TEST(BackendRecovery, MmapRecoversAfterCleanClose) {
  run_crash_recovery(StorageBackendKind::kMmapFile, true, 101);
}
TEST(BackendRecovery, MmapRecoversAfterUncleanDrop) {
  run_crash_recovery(StorageBackendKind::kMmapFile, false, 102);
}
TEST(BackendRecovery, LogRecoversAfterCleanClose) {
  run_crash_recovery(StorageBackendKind::kLogStructured, true, 103);
}
TEST(BackendRecovery, LogRecoversAfterUncleanDrop) {
  run_crash_recovery(StorageBackendKind::kLogStructured, false, 104);
}

// ---- Direct backend behaviour ---------------------------------------------

TEST(MmapBackend, SegmentGrowsAndTracksSlots) {
  ScratchDir dir("mmap_grow");
  ckpt::MmapFileBackend backend(0, dir.path() + "/p0_s0.seg",
                                OpenMode::kFresh, 2);
  causality::DependencyVector dv(3);
  for (CheckpointIndex i = 0; i < 10; ++i) {
    dv.at(1) = i;
    backend.put(i, dv, static_cast<SimTime>(i), 1);
  }
  EXPECT_EQ(backend.slots_used(), 10u);
  EXPECT_GE(backend.slot_capacity(), 10u);
  // Eliminations clear the live flag in place: no new slots.
  backend.collect(3);
  backend.collect(7);
  EXPECT_EQ(backend.slots_used(), 10u);
  EXPECT_EQ(backend.count(), 8u);
  // The zero-copy view reads the mapped file, and must equal the mirror.
  dv.at(1) = 9;
  EXPECT_TRUE(backend.dv_view(9) == dv);
  EXPECT_EQ(backend.get(9).dv, dv);
}

TEST(MmapBackend, DeadSlotsAreCompactedInPlaceSoTheSegmentStaysBounded) {
  // Sliding-window churn with a live set of ~4: without reclamation the
  // segment would grow with total history; the in-place compaction (slide
  // the live slots to the front when half are dead) must bound both the
  // capacity and the recover() scan at ~2x the live set.
  ScratchDir dir("mmap_bound");
  const std::string path = dir.path() + "/p0_s0.seg";
  CheckpointStore reference(0);
  ckpt::MmapFileBackend backend(0, path, OpenMode::kFresh, 4);
  causality::DependencyVector dv(3);
  constexpr CheckpointIndex kWindow = 4;
  for (CheckpointIndex i = 0; i < kWindow; ++i) {
    dv.at(1) = i;
    backend.put(i, dv, 0, 1);
    reference.put(i, dv, 0, 1);
  }
  for (CheckpointIndex i = kWindow; i < 500; ++i) {
    dv.at(1) = i;
    backend.put(i, dv, 0, 1);
    reference.put(i, dv, 0, 1);
    backend.collect(i - kWindow);
    reference.collect(i - kWindow);
  }
  EXPECT_LE(backend.slot_capacity(), 4u * kWindow)
      << "dead slots were never reclaimed";
  EXPECT_LE(backend.slots_used(), backend.slot_capacity());
  test::expect_stores_equal(reference, backend);

  // The compacted segment still recovers exactly.
  ckpt::MmapFileBackend reopened(0, path, OpenMode::kAttach, 4);
  EXPECT_EQ(reopened.recover(), reference.count());
  test::expect_stores_equal(reference, reopened);
}

TEST(MmapBackend, CleanFlagSurvivesExactlyUntilTheNextMutation) {
  ScratchDir dir("mmap_clean");
  const std::string path = dir.path() + "/p0_s0.seg";
  causality::DependencyVector dv(2);
  {
    ckpt::MmapFileBackend backend(0, path, OpenMode::kFresh, 2);
    backend.put(0, dv, 0, 1);
    backend.flush();  // clean close
  }
  {
    ckpt::MmapFileBackend backend(0, path, OpenMode::kAttach, 2);
    EXPECT_EQ(backend.recover(), 1u);
    EXPECT_TRUE(backend.recovered_clean());
    backend.put(1, dv, 1, 1);  // mutation invalidates the clean shutdown
  }  // dropped WITHOUT flush
  {
    ckpt::MmapFileBackend backend(0, path, OpenMode::kAttach, 2);
    EXPECT_EQ(backend.recover(), 2u);
    EXPECT_FALSE(backend.recovered_clean());
    EXPECT_TRUE(backend.contains(1));
  }
}

TEST(MmapBackend, MutationsBeforeRecoverAreRejected) {
  ScratchDir dir("mmap_pending");
  const std::string path = dir.path() + "/p0_s0.seg";
  causality::DependencyVector dv(2);
  {
    ckpt::MmapFileBackend backend(0, path, OpenMode::kFresh, 2);
    backend.put(0, dv, 0, 1);
  }
  ckpt::MmapFileBackend backend(0, path, OpenMode::kAttach, 2);
  EXPECT_THROW(backend.put(1, dv, 1, 1), util::ContractViolation);
  EXPECT_EQ(backend.recover(), 1u);
  backend.put(1, dv, 1, 1);  // fine now
  EXPECT_EQ(backend.recover(), 2u);  // idempotent no-op on a live backend
}

TEST(LogBackend, CompactionBoundsTheLogAndPreservesState) {
  ScratchDir dir("log_compact");
  const std::string path = dir.path() + "/p0_s0.log";
  CheckpointStore reference(0);
  ckpt::LogStructuredBackend backend(0, path, OpenMode::kFresh,
                                     /*compact_min_records=*/8,
                                     /*compact_dead_ratio=*/0.5);
  causality::DependencyVector dv(3);
  // Sliding-window churn: every put is followed by the elimination of an
  // index a fixed distance behind — the RDT-LGC steady state that fills a
  // log with dead records.
  constexpr CheckpointIndex kWindow = 4;
  for (CheckpointIndex i = 0; i < kWindow; ++i) {
    dv.at(1) = i;
    backend.put(i, dv, 0, 1);
    reference.put(i, dv, 0, 1);
  }
  for (CheckpointIndex i = kWindow; i < 200; ++i) {
    dv.at(1) = i;
    backend.put(i, dv, 0, 1);
    reference.put(i, dv, 0, 1);
    backend.collect(i - kWindow);
    reference.collect(i - kWindow);
  }
  EXPECT_GT(backend.compactions(), 0u);
  // 392 mutations ran; compaction keeps the log near the live set's size
  // instead (bounded by the compaction trigger, not the history length).
  EXPECT_LT(backend.log_records(), 2u * 8u + kWindow);
  test::expect_stores_equal(reference, backend);

  // And the compacted log still replays exactly — stats snapshot included.
  backend.flush();
  ckpt::LogStructuredBackend reopened(0, path, OpenMode::kAttach, 8, 0.5);
  EXPECT_EQ(reopened.recover(), reference.count());
  test::expect_stores_equal(reference, reopened);
  EXPECT_EQ(reopened.baseline_records(), backend.baseline_records());
}

// ---- Whole-system runs over persistent storage ----------------------------

/// A complete randomized workload writes its checkpoints through `kind`;
/// the simulation outcome must be identical to the in-memory run (storage
/// is an implementation detail below the middleware), the RDT-LGC optimum
/// must hold (Corollary 1), and reopening the stores from disk alone must
/// reproduce the stored sets and the Lemma-1 recovery line.
void run_system_recovery(StorageBackendKind kind, bool clean) {
  ScratchDir dir("system");
  test::RunSpec spec;
  spec.n = 4;
  spec.duration = 3000;
  spec.seed = 17;
  spec.storage = persistent_config(kind, dir.path());
  const auto system = test::run_workload(spec);

  test::RunSpec memory_spec = spec;
  memory_spec.storage = StorageConfig();
  const auto memory_system = test::run_workload(memory_spec);

  const auto n = static_cast<ProcessId>(spec.n);
  for (ProcessId p = 0; p < n; ++p) {
    ASSERT_EQ(system->node(p).store().stored_indices(),
              memory_system->node(p).store().stored_indices())
        << "persistent backend perturbed the simulation, p" << p;
    ASSERT_EQ(system->node(p).counters().forced_checkpoints,
              memory_system->node(p).counters().forced_checkpoints);
  }
  test::audit_exact_corollary1(*system);
  test::audit_bounds(*system);

  // Under the forced async pipeline an unclean stop would recover each
  // process at a DIFFERENT earlier point of its lineage, and the
  // end-of-run oracles below would not apply; durability_test.cpp audits
  // that crash-cut against the oracle on its own schedule, so this test
  // always flushes there.
  if (clean || forced_async_durability())
    for (ProcessId p = 0; p < n; ++p) system->node(p).store().flush();

  // Reopen every process's store from the directory alone and recover.
  StorageConfig attach = spec.storage;
  attach.open_mode = OpenMode::kAttach;
  std::vector<std::unique_ptr<ShardedCheckpointStore>> reopened;
  std::vector<const ShardedCheckpointStore*> reopened_ptrs;
  for (ProcessId p = 0; p < n; ++p) {
    reopened.push_back(std::make_unique<ShardedCheckpointStore>(
        p, ShardedCheckpointStore::kDefaultShardCount,
        ckpt::StoreConcurrency::kUnsynchronized, attach));
    reopened.back()->recover();
    test::expect_stores_equal(system->node(p).store(), *reopened.back());
    reopened_ptrs.push_back(reopened.back().get());
  }
  if (::testing::Test::HasFatalFailure()) return;

  // GC verdict from the Theorem-1 oracle: everything non-obsolete in the
  // recorded CCP must be present in the RECOVERED stores.
  const ccp::DvPrecedence causal(system->recorder());
  const auto obsolete = ccp::obsolete_theorem1(system->recorder(), causal);
  for (ProcessId p = 0; p < n; ++p) {
    const auto& flags = obsolete[static_cast<std::size_t>(p)];
    for (CheckpointIndex g = 0;
         g < static_cast<CheckpointIndex>(flags.size()); ++g) {
      if (!flags[static_cast<std::size_t>(g)]) {
        ASSERT_TRUE(reopened_ptrs[static_cast<std::size_t>(p)]->contains(g))
            << "non-obsolete s_" << p << "^" << g
            << " missing after recover()";
      }
    }
  }

  // The restart-from-disk recovery line equals the Lemma-1 oracle line for
  // the all-faulty set, capped at the last stored checkpoint (no volatile
  // state survives a full restart).
  const std::vector<CheckpointIndex> line =
      recovery::recovery_line_from_storage(reopened_ptrs);
  std::vector<bool> all_faulty(spec.n, true);
  const std::vector<CheckpointIndex> oracle =
      ccp::recovery_line_lemma1(system->recorder(), causal, all_faulty);
  for (std::size_t p = 0; p < spec.n; ++p) {
    EXPECT_EQ(line[p],
              std::min(oracle[p], reopened_ptrs[p]->last_index()))
        << "recovery line from storage diverges from Lemma 1 at p" << p;
  }
}

TEST(BackendRecovery, SystemRestartFromMmapMatchesOracles) {
  run_system_recovery(StorageBackendKind::kMmapFile, true);
}
TEST(BackendRecovery, SystemRestartFromMmapAfterUncleanStop) {
  run_system_recovery(StorageBackendKind::kMmapFile, false);
}
TEST(BackendRecovery, SystemRestartFromLogMatchesOracles) {
  run_system_recovery(StorageBackendKind::kLogStructured, true);
}
TEST(BackendRecovery, SystemRestartFromLogAfterUncleanStop) {
  run_system_recovery(StorageBackendKind::kLogStructured, false);
}

// ---- Restart-from-disk edge cases -----------------------------------------
//
// recovery_line_from_storage() and the kAttach open path sit on the warm
// restart critical path (ckpt::Node attach); the failure modes below must be
// loud errors, never a silently empty line.

/// Attaching to a directory no store ever wrote: the meta file is absent, so
/// construction itself fails with an I/O error — there is nothing to recover.
void attach_empty_directory(StorageBackendKind kind) {
  ScratchDir dir("attach_empty");
  StorageConfig attach = persistent_config(kind, dir.path());
  attach.open_mode = OpenMode::kAttach;
  EXPECT_THROW(ShardedCheckpointStore(0, 4,
                                      ckpt::StoreConcurrency::kUnsynchronized,
                                      attach),
               util::IoError);
}

TEST(BackendRecoveryEdge, AttachEmptyDirectoryMmap) {
  attach_empty_directory(StorageBackendKind::kMmapFile);
}
TEST(BackendRecoveryEdge, AttachEmptyDirectoryLog) {
  attach_empty_directory(StorageBackendKind::kLogStructured);
}

/// A stripe file deleted out from under a persisted store: the attach open
/// of the missing stripe must fail with an I/O error rather than recover a
/// partial set.
void attach_missing_stripe(StorageBackendKind kind) {
  ScratchDir dir("attach_torn");
  StorageConfig config = persistent_config(kind, dir.path());
  {
    ShardedCheckpointStore store(0, 4,
                                 ckpt::StoreConcurrency::kUnsynchronized,
                                 config);
    causality::DependencyVector dv(3);
    for (CheckpointIndex g = 0; g < 8; ++g) {
      dv.at(0) = g;
      store.put(g, dv, static_cast<SimTime>(g + 1), 64);
    }
    store.flush();
  }
  ASSERT_EQ(std::remove(config.stripe_file(0, 1).c_str()), 0);
  config.open_mode = OpenMode::kAttach;
  EXPECT_THROW(ShardedCheckpointStore(0, 4,
                                      ckpt::StoreConcurrency::kUnsynchronized,
                                      config),
               util::IoError);
}

TEST(BackendRecoveryEdge, AttachMissingStripeFileMmap) {
  attach_missing_stripe(StorageBackendKind::kMmapFile);
}
TEST(BackendRecoveryEdge, AttachMissingStripeFileLog) {
  attach_missing_stripe(StorageBackendKind::kLogStructured);
}

/// A store whose every checkpoint was collected before the crash: the media
/// open and recover() succeed (zero live records is a valid on-disk state),
/// but a recovery line cannot be built over an empty lineage — the contract
/// fires instead of fabricating index 0.
void attach_zero_survivors(StorageBackendKind kind) {
  ScratchDir dir("attach_barren");
  StorageConfig config = persistent_config(kind, dir.path());
  {
    ShardedCheckpointStore store(0, 4,
                                 ckpt::StoreConcurrency::kUnsynchronized,
                                 config);
    causality::DependencyVector dv(3);
    for (CheckpointIndex g = 0; g < 8; ++g) {
      dv.at(0) = g;
      store.put(g, dv, static_cast<SimTime>(g + 1), 64);
    }
    for (CheckpointIndex g = 0; g < 8; ++g) store.collect(g);
    ASSERT_EQ(store.count(), 0u);
    store.flush();
  }
  config.open_mode = OpenMode::kAttach;
  ShardedCheckpointStore reopened(0, 4,
                                  ckpt::StoreConcurrency::kUnsynchronized,
                                  config);
  EXPECT_EQ(reopened.recover(), 0u);
  const std::vector<const ShardedCheckpointStore*> stores = {&reopened};
  EXPECT_THROW(recovery::recovery_line_from_storage(stores),
               util::ContractViolation);
}

TEST(BackendRecoveryEdge, ZeroSurvivingCheckpointsMmap) {
  attach_zero_survivors(StorageBackendKind::kMmapFile);
}
TEST(BackendRecoveryEdge, ZeroSurvivingCheckpointsLog) {
  attach_zero_survivors(StorageBackendKind::kLogStructured);
}

/// No stores at all is a caller bug, not an empty line.
TEST(BackendRecoveryEdge, NoStoresRejected) {
  const std::vector<const ShardedCheckpointStore*> stores;
  EXPECT_THROW(recovery::recovery_line_from_storage(stores),
               util::ContractViolation);
}

}  // namespace
}  // namespace rdtgc
