// Contract-checking helpers (precondition / postcondition / invariant).
//
// Following the Core Guidelines (I.5/I.7), interfaces state their contracts
// explicitly.  Violations indicate programmer error and throw
// util::ContractViolation so tests can assert on them; they are never used for
// recoverable runtime conditions.
#pragma once

#include <stdexcept>
#include <string>

namespace rdtgc::util {

/// Thrown when a stated precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line);

}  // namespace rdtgc::util

/// Precondition check: callers must establish `cond` before the call.
#define RDTGC_EXPECTS(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::rdtgc::util::contract_failure("precondition", #cond, __FILE__,      \
                                      __LINE__);                            \
  } while (false)

/// Postcondition check: the implementation guarantees `cond` on return.
#define RDTGC_ENSURES(cond)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::rdtgc::util::contract_failure("postcondition", #cond, __FILE__,    \
                                      __LINE__);                           \
  } while (false)

/// Internal invariant check.
#define RDTGC_ASSERT(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::rdtgc::util::contract_failure("invariant", #cond, __FILE__,      \
                                      __LINE__);                         \
  } while (false)
