#include "util/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <atomic>

namespace rdtgc::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

// Overrides are atomics so a background-writer thread draining a durability
// pipeline reads them race-free while a test installs/uninstalls its
// failure injection on the main thread.
std::atomic<int (*)(void*, std::size_t, int)> g_msync_override{nullptr};
std::atomic<int (*)(int)> g_fsync_override{nullptr};

}  // namespace

int io_msync(void* addr, std::size_t length, int flags) {
  const auto fn = g_msync_override.load(std::memory_order_acquire);
  return fn != nullptr ? fn(addr, length, flags) : ::msync(addr, length, flags);
}

int io_fsync(int fd) {
  const auto fn = g_fsync_override.load(std::memory_order_acquire);
  return fn != nullptr ? fn(fd) : ::fsync(fd);
}

void set_io_msync_for_test(int (*fn)(void*, std::size_t, int)) {
  g_msync_override.store(fn, std::memory_order_release);
}

void set_io_fsync_for_test(int (*fn)(int)) {
  g_fsync_override.store(fn, std::memory_order_release);
}

MappedFile::MappedFile(const std::string& path, Mode mode,
                       std::size_t initial_size) {
  open(path, mode, initial_size);
}

MappedFile::~MappedFile() { close(); }

void MappedFile::open(const std::string& path, Mode mode,
                      std::size_t initial_size) {
  close();
  const int flags = mode == Mode::kCreate ? (O_RDWR | O_CREAT | O_TRUNC)
                                          : O_RDWR;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open", path);

  std::size_t size = initial_size;
  if (mode == Mode::kOpenExisting) {
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw_errno("fstat", path);
    }
    size = static_cast<std::size_t>(st.st_size);
  }
  if (size == 0) size = 1;  // zero-length mappings are invalid
  if (mode == Mode::kCreate || static_cast<std::size_t>(::lseek(
                                   fd, 0, SEEK_END)) < size) {
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      ::close(fd);
      throw_errno("ftruncate", path);
    }
  }

  void* map = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    ::close(fd);
    throw_errno("mmap", path);
  }
  path_ = path;
  fd_ = fd;
  data_ = static_cast<std::byte*>(map);
  size_ = size;
}

void MappedFile::close() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

void MappedFile::resize(std::size_t new_size) {
  if (new_size == 0) new_size = 1;
  if (new_size == size_) return;
  // ftruncate BEFORE unmapping: the common failure (ENOSPC on growth) then
  // throws while the old mapping is still intact, so the object stays fully
  // usable for the caller's error handling.  Only an mmap failure after the
  // successful truncate (address-space exhaustion) leaves the object
  // unmapped — size() reads 0 then, and sync()/close() stay safe.
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0)
    throw_errno("ftruncate", path_);
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
  void* map =
      ::mmap(nullptr, new_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) throw_errno("mmap", path_);
  data_ = static_cast<std::byte*>(map);
  size_ = new_size;
}

void MappedFile::sync() {
  if (data_ == nullptr) return;
  if (io_msync(data_, size_, MS_SYNC) != 0) throw_errno("msync", path_);
}

}  // namespace rdtgc::util
