// Asynchronous durability for a sharded checkpoint store: group commit and
// an optional background writer, so the zero-alloc protocol hot path never
// blocks on media.
//
// The paper's model assumes checkpoints reach stable storage; the kSync
// backends charge that cost to the protocol hot path (one pwrite per log
// record, write-through mapped pages, fsync/msync inline).  Under a
// non-kSync DurabilityPolicy the owning ShardedCheckpointStore splits the
// two roles:
//
//   * the ACKNOWLEDGED state lives in the store's flat in-memory stripes —
//     the same zero-allocation CheckpointStore path as the in-memory
//     backend — and serves every read and every protocol decision;
//   * the DURABLE state lives in the persistent stripe backends, which no
//     longer see mutations directly.  Each acknowledged mutation is
//     recorded in this pipeline's bounded ring (preallocated slots, DV
//     payload buffers reused across wraps — steady-state enqueue is
//     allocation-free), and a GROUP COMMIT replays a whole window of
//     recorded ops, in acknowledgment order, into the stripe backends:
//     each touched stripe is bracketed by begin_batch()/end_batch(true),
//     so the log backend emits the window as ONE pwrite + one fsync and
//     the mmap backend pays one msync — many per-op durability points
//     coalesced into one.
//
// Commit scheduling: kGroupCommit drains inline on the operation that
// fills the window (every_k_ops; optionally every put with
// every_checkpoint), so the caller's thread pays the amortized media cost.
// kBackground drains on a dedicated writer thread that claims windows from
// the ring (every_k_ops bounds a pass) and the hot path NEVER syncs;
// producers only spin when the bounded ring is full (backpressure).
//
// Locking discipline (all leaf-level util::SpinLocks, fixed order):
//   ring_lock_  — guards the ring indices and slot publication.  Held for
//                 nanoseconds: slot fill on enqueue, index reads/advance on
//                 claim/free.  May be taken while the store holds a stripe
//                 lock (stripe -> ring order, never the reverse).
//   drain_lock_ — serializes whole drains (writer passes, inline commits,
//                 flush()).  I/O happens under drain_lock_ but NEVER under
//                 ring_lock_, so producers keep enqueueing while a commit
//                 writes media.
//
// Crash semantics (the contract tests/durability_test.cpp certifies
// against the Theorem-1 oracle): the recorded-op sequence is the
// acknowledged history, and every commit applies a PREFIX of it, in order,
// then syncs.  Dropping the store without flush() models the crash — the
// un-drained window is discarded (the destructor stops the writer after
// its in-flight pass; it does not drain), so recovery lands on the state
// after some prefix of the acknowledged operations: never a reordering,
// never a gap.  The store-global meta counters are published at commit
// time from a replica maintained in drain order (not from the acknowledged
// counters), so recovered stats always match the recovered prefix.  As
// with the mmap backend's in-place compaction, a commit is not atomic
// against an OS crash mid-drain; the model — here and in the tests — is
// dropping the object between operations.
//
// Observability: acknowledged-vs-synced op counts and checkpoint indices
// are maintained as atomics, snapshot by status() — the durability-lag
// figure metrics::DurabilityLag samples and the sweep summaries aggregate.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "causality/dependency_vector.hpp"
#include "causality/types.hpp"
#include "ckpt/storage_backend.hpp"
#include "util/spinlock.hpp"

namespace rdtgc::ckpt {

/// One snapshot of the acknowledged-vs-durable gap.  In kSync mode (no
/// pipeline) the gap is identically zero.
struct DurabilityStatus {
  std::uint64_t acked_ops = 0;   ///< mutations acknowledged to the caller
  std::uint64_t synced_ops = 0;  ///< mutations durable on the media
  /// Highest checkpoint index acknowledged / made durable (kNoCheckpoint
  /// before the first put).  Not monotonic across rollbacks.
  CheckpointIndex acked_index = kNoCheckpoint;
  CheckpointIndex synced_index = kNoCheckpoint;

  std::uint64_t lag_ops() const { return acked_ops - synced_ops; }
};

class DurabilityPipeline {
 public:
  /// `stripes` are the persistent backends the drains write into (owned by
  /// the store, which destroys this pipeline first); `mask` is the store's
  /// shard mask; `publish_meta` stores the durable-replica counters into
  /// the store's mapped meta header at each commit.  Policy mode must not
  /// be kSync.  Starts the writer thread in kBackground mode.
  DurabilityPipeline(DurabilityPolicy policy,
                     std::vector<std::unique_ptr<StorageBackend>>& stripes,
                     std::size_t mask,
                     std::function<void(const StoreStats&)> publish_meta);

  /// Stops the writer after its in-flight pass and DISCARDS whatever is
  /// still enqueued — dropping the store without flush() models a crash.
  ~DurabilityPipeline();

  DurabilityPipeline(const DurabilityPipeline&) = delete;
  DurabilityPipeline& operator=(const DurabilityPipeline&) = delete;

  // ---- Recording (called by the store, under the owning stripe's lock
  // in striped mode so the per-stripe replay order matches the mirror).
  // Each returns true when the policy calls for an inline group commit;
  // the caller invokes commit() AFTER releasing its stripe lock.  Spins
  // when the bounded ring is full (kBackground backpressure); steady-state
  // allocation-free once every slot's DV buffer is sized. ----

  bool record_put(CheckpointIndex index, const causality::DependencyVector& dv,
                  SimTime stored_at, std::uint64_t bytes);
  bool record_collect(CheckpointIndex index, std::uint64_t freed);
  bool record_discard(CheckpointIndex ri, std::size_t discarded,
                      std::uint64_t freed);

  /// Drain every currently recorded op as one group commit (inline mode;
  /// harmless no-op when another thread's drain already took them).
  void commit();

  /// Quiesce: drain everything recorded so far and return with the media
  /// durable and (kBackground) the writer idle.  Requires the caller's
  /// mutators to be quiescent, like every store-level flush.
  void flush();

  /// Reset the pipeline after the owning store recovered from media: the
  /// durable replica adopts the recovered counters/occupancy and the lag
  /// collapses to zero.
  void reset_after_recover(CheckpointIndex last_index, const StoreStats& stats,
                           std::size_t count, std::uint64_t bytes);

  /// Acked-vs-synced snapshot; safe to call concurrently with a
  /// background drain.
  DurabilityStatus status() const;

  const DurabilityPolicy& policy() const { return policy_; }

  /// Group commits completed (drain passes that applied at least one op).
  std::uint64_t commits() const {
    return commits_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    enum class Kind : std::uint8_t { kPut, kCollect, kDiscardAfter };
    Kind kind = Kind::kPut;
    CheckpointIndex index = 0;
    SimTime stored_at = 0;
    /// kPut: checkpoint payload bytes.  kCollect/kDiscardAfter: bytes the
    /// operation freed (captured at acknowledgment time so the drain can
    /// maintain the durable stats replica without consulting the mirror).
    std::uint64_t bytes = 0;
    std::size_t discarded = 0;  ///< kDiscardAfter: checkpoints dropped
    /// kPut: the DV payload, copied into a buffer reused across ring
    /// wraps (sized on first use; allocation-free thereafter).
    std::vector<IntervalIndex> dv;
    std::size_t dv_size = 0;
  };

  /// Reserve the next slot (spinning while the ring is full), fill it via
  /// the slot fields, publish it, and report whether the group-commit
  /// trigger fired.  Runs entirely under ring_lock_.
  template <typename FillFn>
  bool enqueue(Slot::Kind kind, bool is_put, FillFn&& fill);

  /// One serialized drain pass: claim up to `max_ops` recorded ops, apply
  /// them in order to the stripe backends inside batch brackets, publish
  /// the durable meta, free the slots.  Returns how many ops it applied.
  std::size_t drain_some(std::size_t max_ops);

  void writer_main();

  DurabilityPolicy policy_;
  std::vector<std::unique_ptr<StorageBackend>>& stripes_;
  std::size_t shard_mask_;
  std::function<void(const StoreStats&)> publish_meta_;

  // Bounded ring: capacity is a power of two; head_/tail_ are free-running
  // sequence numbers (occupancy = head_ - tail_).  Slots in [tail_, head_)
  // belong to the drain side; producers reuse a slot only after tail_
  // passed it.  All three guarded by ring_lock_.
  std::vector<Slot> ring_;
  std::size_t ring_mask_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  mutable util::SpinLock ring_lock_;

  /// Serializes drains; I/O runs under it (leaf-ness is preserved: drains
  /// take ring_lock_ only in the claim/free windows, never across I/O).
  util::SpinLock drain_lock_;

  // ---- Drain-side state (touched only under drain_lock_) ----
  /// Durable-state stats replica, advanced in drain order; published to
  /// the meta header at each commit so recovered counters always match the
  /// recovered prefix.
  StoreStats durable_stats_;
  std::size_t durable_count_ = 0;
  std::uint64_t durable_bytes_ = 0;
  /// Reusable DV for replaying puts into the backends (copy-in target).
  causality::DependencyVector scratch_dv_;
  /// Per-stripe "touched in this drain" marks (begin_batch bookkeeping).
  std::vector<std::uint8_t> touched_;

  // ---- Lag counters (atomics: probe reads race a background drain) ----
  std::atomic<std::uint64_t> acked_ops_{0};
  std::atomic<std::uint64_t> synced_ops_{0};
  std::atomic<CheckpointIndex> acked_index_{kNoCheckpoint};
  std::atomic<CheckpointIndex> synced_index_{kNoCheckpoint};
  std::atomic<std::uint64_t> commits_{0};

  // ---- Background writer ----
  std::atomic<bool> stop_{false};
  std::thread writer_;
};

}  // namespace rdtgc::ckpt
