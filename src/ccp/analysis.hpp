// CCP-level analyses from the paper:
//
//  * RDT oracle            — Definition 4: every zigzag path is doubled by a
//                            causal path (checked over all general-checkpoint
//                            pairs, including Z-cycles).
//  * Lemma 1 recovery line — R_F for RDT patterns via causal precedence.
//  * Theorem 1 oracle      — the exact set of obsolete stable checkpoints.
//  * Corollary 1 set       — what an optimal *asynchronous* collector must
//                            retain, computed from each process's own DV.
//  * Wang-style min/max consistent global checkpoints containing a target
//    set (the classic application RDT enables [20]), plus brute-force
//    variants used as test oracles.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "causality/types.hpp"
#include "ccp/precedence.hpp"
#include "ccp/recorder.hpp"
#include "ccp/zigzag.hpp"

namespace rdtgc::ccp {

/// Description of one RDT violation (for diagnostics).
struct RdtViolation {
  ProcessId a = -1;
  CheckpointIndex alpha = -1;
  ProcessId b = -1;
  CheckpointIndex beta = -1;
  std::string to_string() const;
};

/// Definition 4: the live CCP is RD-trackable iff zigzag ⇒ causal for every
/// ordered pair of general checkpoints.  On success returns std::nullopt;
/// otherwise the first violation found.
std::optional<RdtViolation> check_rdt(const CcpRecorder& recorder,
                                      const Precedence& causal,
                                      const ZigzagAnalysis& zigzag);

/// Lemma 1: R_F = ∪_i { c_i^k, k = max(γ | ∀ f∈F : s_f^last ↛ c_i^γ) }.
/// `faulty[p]` marks members of F.  Entry last_s(p)+1 denotes the volatile
/// state.  Only valid on RD-trackable CCPs.
std::vector<CheckpointIndex> recovery_line_lemma1(
    const CcpRecorder& recorder, const Precedence& causal,
    const std::vector<bool>& faulty);

/// Consistency of a full global checkpoint: no member causally precedes
/// another (§2.2; equivalent to the induced cut being consistent).
bool is_consistent_global_checkpoint(const CcpRecorder& recorder,
                                     const Precedence& causal,
                                     const std::vector<CheckpointIndex>& line);

/// Theorem 1: per process, the flags of *stable* checkpoints (index 0 ..
/// last_s(p)) that are obsolete in the current cut: s_i^γ is obsolete iff no
/// process f satisfies  s_f^last → c_i^{γ+1}  ∧  s_f^last ↛ s_i^γ.
std::vector<std::vector<bool>> obsolete_theorem1(const CcpRecorder& recorder,
                                                 const Precedence& causal);

/// Corollary 1: the stable checkpoints of p that an optimal asynchronous
/// collector must retain, from p's own dependency vectors:
/// retain s_p^γ iff ∃f: DV(v_p)[f] == DV(c_p^{γ+1})[f] ∧ DV(v_p)[f] > DV(s_p^γ)[f].
std::vector<CheckpointIndex> retained_corollary1(const CcpRecorder& recorder,
                                                 ProcessId p);

/// Target set for min/max queries: process -> required checkpoint index.
using TargetSet = std::map<ProcessId, CheckpointIndex>;

/// Maximum consistent global checkpoint containing S (Wang [20], valid under
/// RDT): per free process the last checkpoint not causally preceded by any
/// member of S; returns std::nullopt when no consistent global checkpoint
/// contains S.
std::optional<std::vector<CheckpointIndex>> max_consistent_containing(
    const CcpRecorder& recorder, const Precedence& causal, const TargetSet& s);

/// Minimum consistent global checkpoint containing S.
std::optional<std::vector<CheckpointIndex>> min_consistent_containing(
    const CcpRecorder& recorder, const Precedence& causal, const TargetSet& s);

/// Test oracle: enumerate all global checkpoints (exponential!) and return
/// the componentwise max/min consistent one containing S, or std::nullopt.
/// `caps[p]` bounds the candidate index per process (use last_s(p)+1 to allow
/// volatile states).
std::optional<std::vector<CheckpointIndex>> brute_force_extreme_consistent(
    const CcpRecorder& recorder, const Precedence& causal, const TargetSet& s,
    const std::vector<CheckpointIndex>& caps, bool want_max);

/// Definition 3, checked on an explicit message sequence: is [ids...] a
/// zigzag path connecting c_a^alpha to c_b^beta?  (Every message must be
/// live and delivered.)
bool is_zigzag_sequence(const CcpRecorder& recorder,
                        const std::vector<sim::MessageId>& ids, ProcessId a,
                        CheckpointIndex alpha, ProcessId b,
                        CheckpointIndex beta);

/// Is the message sequence causal (§2.2: each receipt causally precedes the
/// next send — they share a process, so event order decides)?
bool is_causal_sequence(const CcpRecorder& recorder,
                        const std::vector<sim::MessageId>& ids);

}  // namespace rdtgc::ccp
