#include "ckpt/mmap_backend.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace rdtgc::ckpt {

// Plain-old-data header views over the mapping.  The mapping is
// page-aligned and every field offset is naturally aligned, so the
// reinterpret_casts below are valid object accesses on every platform this
// targets (static_asserts pin the layout).
struct MmapFileBackend::SegmentHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::int32_t owner;
  std::uint32_t dv_width;
  std::uint32_t clean;  ///< 1 iff the last close was preceded by flush()
  std::uint64_t slot_capacity;
  std::uint64_t slots_used;
  PersistedStoreStats stats;

  static_assert(sizeof(std::uint64_t) == 8 && sizeof(std::int32_t) == 4,
                "fixed-width file layout");
};

struct MmapFileBackend::SlotHeader {
  std::uint32_t state;
  std::int32_t index;
  std::uint64_t stored_at;
  std::uint64_t bytes;
  // IntervalIndex dv[dv_width] follows.
};

namespace {

constexpr std::uint64_t kSegmentMagic = 0x31474553434754ffull;  // "RDTGCSEG1"-ish
constexpr std::uint32_t kSegmentVersion = 1;

/// Slots are 8-byte aligned so the next slot's 64-bit fields stay aligned.
std::size_t align8(std::size_t n) { return (n + 7u) & ~std::size_t{7u}; }

}  // namespace

MmapFileBackend::SegmentHeader* MmapFileBackend::header() {
  return reinterpret_cast<SegmentHeader*>(file_.data());
}
const MmapFileBackend::SegmentHeader* MmapFileBackend::header() const {
  return reinterpret_cast<const SegmentHeader*>(file_.data());
}

std::size_t MmapFileBackend::slot_size() const {
  RDTGC_ASSERT(dv_width_ != kWidthUnset);
  return align8(sizeof(SlotHeader) + dv_width_ * sizeof(IntervalIndex));
}

std::byte* MmapFileBackend::slot_at(std::uint64_t slot) {
  return file_.data() + sizeof(SegmentHeader) + slot * slot_size();
}
const std::byte* MmapFileBackend::slot_at(std::uint64_t slot) const {
  return file_.data() + sizeof(SegmentHeader) + slot * slot_size();
}

MmapFileBackend::MmapFileBackend(ProcessId owner, std::string path,
                                 OpenMode mode, std::size_t initial_slots)
    : mem_(owner) {
  static_assert(sizeof(SegmentHeader) == 80, "on-disk segment layout");
  static_assert(sizeof(SlotHeader) == 24, "on-disk slot layout");
  RDTGC_EXPECTS(initial_slots >= 1);
  if (mode == OpenMode::kFresh) {
    file_.open(path, util::MappedFile::Mode::kCreate, sizeof(SegmentHeader));
    SegmentHeader* h = header();
    h->magic = kSegmentMagic;
    h->version = kSegmentVersion;
    h->owner = owner;
    h->dv_width = kWidthUnset;
    h->clean = 0;
    h->slot_capacity = initial_slots;
    h->slots_used = 0;
    medium_dirty_ = true;
  } else {
    file_.open(path, util::MappedFile::Mode::kOpenExisting, 0);
    pending_recover_ = true;
  }
}

void MmapFileBackend::ensure_width(std::size_t width) {
  if (dv_width_ == kWidthUnset) {
    // First put fixes the stripe's record layout and sizes the slot region.
    dv_width_ = static_cast<std::uint32_t>(width);
    header()->dv_width = dv_width_;
    const std::uint64_t capacity = header()->slot_capacity;
    file_.resize(sizeof(SegmentHeader) + capacity * slot_size());
    return;
  }
  RDTGC_EXPECTS(width == dv_width_);
}

void MmapFileBackend::ensure_capacity() {
  // Reserve ahead (geometrically) so write_slot's push_back is no-throw.
  if (live_slots_.size() == live_slots_.capacity())
    live_slots_.reserve(std::max<std::size_t>(8, live_slots_.capacity() * 2));
  SegmentHeader* h = header();
  if (h->slots_used < h->slot_capacity) return;
  const std::uint64_t live = live_slots_.size();
  if (live * 2 <= h->slot_capacity) {
    // At least half the slots are dead: compact in place instead of
    // growing.  live_slots_ is ascending and live_slots_[k] >= k, so
    // sliding each live slot down to position k preserves the
    // ascending-index file order recover() relies on (overlap-safe via
    // memmove).  Pure memory writes — no-throw.
    const std::uint64_t used_before = h->slots_used;
    for (std::uint64_t k = 0; k < live; ++k) {
      const std::uint64_t from = live_slots_[static_cast<std::size_t>(k)];
      if (from != k) std::memmove(slot_at(k), slot_at(from), slot_size());
      live_slots_[static_cast<std::size_t>(k)] = k;
    }
    // Release the tail: stale copies above the live prefix must not be
    // mistaken for committed slots by a later recover().
    for (std::uint64_t slot = live; slot < used_before; ++slot)
      reinterpret_cast<SlotHeader*>(slot_at(slot))->state = kSlotEmpty;
    h->slots_used = live;
    return;
  }
  const std::uint64_t capacity = h->slot_capacity * 2;
  file_.resize(sizeof(SegmentHeader) + capacity * slot_size());  // may throw
  header()->slot_capacity = capacity;  // header() re-read after remap
}

void MmapFileBackend::write_slot(CheckpointIndex index,
                                 const causality::DependencyVector& dv,
                                 SimTime stored_at, std::uint64_t bytes) {
  const std::uint64_t slot = header()->slots_used;
  std::byte* raw = slot_at(slot);
  auto* sh = reinterpret_cast<SlotHeader*>(raw);
  sh->state = kSlotEmpty;
  sh->index = index;
  sh->stored_at = stored_at;
  sh->bytes = bytes;
  const auto entries = dv.entries();
  if (!entries.empty())
    std::memcpy(raw + sizeof(SlotHeader), entries.data(),
                entries.size() * sizeof(IntervalIndex));
  // Commit marker last: a torn append leaves state == kSlotEmpty and
  // recover() skips the slot.
  sh->state = kSlotLive;
  header()->slots_used = slot + 1;
  live_slots_.push_back(slot);
}

std::size_t MmapFileBackend::live_position(CheckpointIndex index) const {
  const std::vector<CheckpointIndex>& indices = mem_.stored_indices();
  const auto it = std::lower_bound(indices.begin(), indices.end(), index);
  RDTGC_ASSERT(it != indices.end() && *it == index);
  return static_cast<std::size_t>(it - indices.begin());
}

void MmapFileBackend::sync_header_stats() {
  SegmentHeader* h = header();
  h->stats = PersistedStoreStats::from(mem_.stats());
  h->clean = 0;
  medium_dirty_ = true;
}

void MmapFileBackend::put(StoredCheckpoint checkpoint) {
  RDTGC_EXPECTS(!pending_recover_);
  // Pre-validate the mirror's contract, then grow the medium: every throw
  // (contract or IoError) happens before anything is written, so mirror and
  // medium can never diverge.
  RDTGC_EXPECTS(checkpoint.index >= 0);
  RDTGC_EXPECTS(mem_.count() == 0 || checkpoint.index > mem_.last_index());
  ensure_width(checkpoint.dv.size());
  ensure_capacity();
  write_slot(checkpoint.index, checkpoint.dv, checkpoint.stored_at,
             checkpoint.bytes);
  mem_.put(std::move(checkpoint));
  sync_header_stats();
}

void MmapFileBackend::put(CheckpointIndex index,
                          const causality::DependencyVector& dv,
                          SimTime stored_at, std::uint64_t bytes) {
  RDTGC_EXPECTS(!pending_recover_);
  RDTGC_EXPECTS(index >= 0);
  RDTGC_EXPECTS(mem_.count() == 0 || index > mem_.last_index());
  ensure_width(dv.size());
  ensure_capacity();
  write_slot(index, dv, stored_at, bytes);
  mem_.put(index, dv, stored_at, bytes);
  sync_header_stats();
}

causality::DvView MmapFileBackend::dv_view(CheckpointIndex index) const {
  const std::uint64_t slot = live_slots_[live_position(index)];
  const std::byte* raw = slot_at(slot);
  return causality::DvView(
      reinterpret_cast<const IntervalIndex*>(raw + sizeof(SlotHeader)),
      dv_width_);
}

void MmapFileBackend::collect(CheckpointIndex index) {
  RDTGC_EXPECTS(!pending_recover_);
  mem_.collect(index);  // throws when absent, before any file write
  // mem_ no longer holds `index`; the doomed slot's position was the one the
  // erased entry occupied, recomputable as the lower_bound insertion point.
  const std::vector<CheckpointIndex>& indices = mem_.stored_indices();
  const auto it = std::lower_bound(indices.begin(), indices.end(), index);
  const auto pos = static_cast<std::size_t>(it - indices.begin());
  const std::uint64_t slot = live_slots_[pos];
  reinterpret_cast<SlotHeader*>(slot_at(slot))->state = kSlotDead;
  live_slots_.erase(live_slots_.begin() + static_cast<std::ptrdiff_t>(pos));
  sync_header_stats();
}

std::size_t MmapFileBackend::discard_after(CheckpointIndex ri) {
  RDTGC_EXPECTS(!pending_recover_);
  const std::vector<CheckpointIndex>& indices = mem_.stored_indices();
  const auto it = std::upper_bound(indices.begin(), indices.end(), ri);
  const auto pos = static_cast<std::size_t>(it - indices.begin());
  for (std::size_t k = pos; k < live_slots_.size(); ++k)
    reinterpret_cast<SlotHeader*>(slot_at(live_slots_[k]))->state = kSlotDead;
  live_slots_.resize(pos);
  const std::size_t discarded = mem_.discard_after(ri);
  sync_header_stats();
  return discarded;
}

std::size_t MmapFileBackend::recover() {
  if (!pending_recover_) return mem_.count();
  RDTGC_EXPECTS(file_.size() >= sizeof(SegmentHeader));
  {
    const SegmentHeader* h = header();
    RDTGC_EXPECTS(h->magic == kSegmentMagic);
    RDTGC_EXPECTS(h->version == kSegmentVersion);
    RDTGC_EXPECTS(h->owner == mem_.owner());
    recovered_clean_ = h->clean == 1;
    dv_width_ = h->dv_width;
  }
  // The replay below counts the live set as fresh puts; the persisted
  // counters carry the full history (collections, discards, peaks).
  const StoreStats stats = header()->stats.to_stats();
  if (dv_width_ != kWidthUnset) {
    // Trust only what physically fits in the file: a crash between the
    // header update and the ftruncate of a growth cannot fabricate slots.
    const std::uint64_t fit =
        (file_.size() - sizeof(SegmentHeader)) / slot_size();
    const std::uint64_t used = std::min(header()->slots_used, fit);
    for (std::uint64_t slot = 0; slot < used; ++slot) {
      const auto* sh = reinterpret_cast<const SlotHeader*>(slot_at(slot));
      if (sh->state != kSlotLive) continue;  // dead, or torn (uncommitted)
      StoredCheckpoint checkpoint;
      checkpoint.index = sh->index;
      checkpoint.dv = causality::DependencyVector(dv_width_);
      if (dv_width_ > 0)
        std::memcpy(&checkpoint.dv.at(0), slot_at(slot) + sizeof(SlotHeader),
                    dv_width_ * sizeof(IntervalIndex));
      checkpoint.stored_at = sh->stored_at;
      checkpoint.bytes = sh->bytes;
      mem_.put(std::move(checkpoint));  // live slots are ascending in index
      live_slots_.push_back(slot);
    }
    // Normalize the header and the mapping to the trusted extent: a header
    // claiming more slots (or capacity) than the file holds would otherwise
    // send the next append past the end of the mapping.
    const std::uint64_t capacity = std::max<std::uint64_t>(fit, 1);
    file_.resize(sizeof(SegmentHeader) + capacity * slot_size());
    header()->slot_capacity = capacity;
    header()->slots_used = used;
  }
  mem_.restore_stats(stats);
  pending_recover_ = false;
  medium_dirty_ = true;  // the header normalization above is unsynced
  return mem_.count();
}

void MmapFileBackend::flush() {
  // Dirty-flag skip: nothing changed since the last flush AND the segment
  // is already marked clean — the msync would be a pure no-op.
  if (!medium_dirty_ && header()->clean == 1) return;
  header()->clean = 1;
  try {
    file_.sync();
  } catch (...) {
    // An msync failure must not leave a clean flag the medium never got:
    // a subsequent crash-drop would then recover as "cleanly closed".
    header()->clean = 0;
    throw;
  }
  ++msyncs_;
  medium_dirty_ = false;
}

void MmapFileBackend::end_batch(bool durable) {
  if (!durable || !medium_dirty_) return;
  // Group-commit durability point: msync without the clean flag (the
  // mutations already cleared it; a crash after this commit is still an
  // unclean-but-consistent state, not a clean close).
  file_.sync();
  ++msyncs_;
  medium_dirty_ = false;
}

std::uint64_t MmapFileBackend::slots_used() const { return header()->slots_used; }
std::uint64_t MmapFileBackend::slot_capacity() const {
  return header()->slot_capacity;
}

}  // namespace rdtgc::ckpt
