#include "ccp/analysis.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdtgc::ccp {

std::string RdtViolation::to_string() const {
  return "zigzag without causal doubling: c_" + std::to_string(a) + "^" +
         std::to_string(alpha) + " ~> c_" + std::to_string(b) + "^" +
         std::to_string(beta);
}

std::optional<RdtViolation> check_rdt(const CcpRecorder& recorder,
                                      const Precedence& causal,
                                      const ZigzagAnalysis& zigzag) {
  const auto n = static_cast<ProcessId>(recorder.process_count());
  for (ProcessId a = 0; a < n; ++a) {
    const CheckpointIndex la = recorder.last_stable(a);
    for (CheckpointIndex alpha = 0; alpha <= la + 1; ++alpha) {
      for (ProcessId b = 0; b < n; ++b) {
        const CheckpointIndex lb = recorder.last_stable(b);
        for (CheckpointIndex beta = 0; beta <= lb + 1; ++beta) {
          if (zigzag.zigzag(a, alpha, b, beta) &&
              !causal.precedes(a, alpha, b, beta))
            return RdtViolation{a, alpha, b, beta};
        }
      }
    }
  }
  return std::nullopt;
}

std::vector<CheckpointIndex> recovery_line_lemma1(
    const CcpRecorder& recorder, const Precedence& causal,
    const std::vector<bool>& faulty) {
  const std::size_t n = recorder.process_count();
  RDTGC_EXPECTS(faulty.size() == n);
  std::vector<CheckpointIndex> line(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<ProcessId>(i);
    const CheckpointIndex last_i = recorder.last_stable(pi);
    // s_f^last → c_i^γ is monotone in γ, so scan down from the volatile
    // state; γ = 0 always qualifies (nothing precedes initial checkpoints).
    CheckpointIndex k = last_i + 1;
    for (; k > 0; --k) {
      bool excluded = false;
      for (std::size_t f = 0; f < n && !excluded; ++f) {
        if (!faulty[f]) continue;
        const auto pf = static_cast<ProcessId>(f);
        excluded = causal.precedes(pf, recorder.last_stable(pf), pi, k);
      }
      if (!excluded) break;
    }
    line[i] = k;
  }
  return line;
}

bool is_consistent_global_checkpoint(
    const CcpRecorder& recorder, const Precedence& causal,
    const std::vector<CheckpointIndex>& line) {
  const std::size_t n = recorder.process_count();
  RDTGC_EXPECTS(line.size() == n);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (a != b && causal.precedes(static_cast<ProcessId>(a), line[a],
                                    static_cast<ProcessId>(b), line[b]))
        return false;
  return true;
}

std::vector<std::vector<bool>> obsolete_theorem1(const CcpRecorder& recorder,
                                                 const Precedence& causal) {
  const std::size_t n = recorder.process_count();
  std::vector<std::vector<bool>> obsolete(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<ProcessId>(i);
    const CheckpointIndex last_i = recorder.last_stable(pi);
    obsolete[i].resize(static_cast<std::size_t>(last_i) + 1, true);
    for (CheckpointIndex g = 0; g <= last_i; ++g) {
      for (std::size_t f = 0; f < n; ++f) {
        const auto pf = static_cast<ProcessId>(f);
        const CheckpointIndex last_f = recorder.last_stable(pf);
        if (causal.precedes(pf, last_f, pi, g + 1) &&
            !causal.precedes(pf, last_f, pi, g)) {
          obsolete[i][static_cast<std::size_t>(g)] = false;
          break;
        }
      }
    }
  }
  return obsolete;
}

std::vector<CheckpointIndex> retained_corollary1(const CcpRecorder& recorder,
                                                 ProcessId p) {
  const std::size_t n = recorder.process_count();
  const CheckpointIndex last = recorder.last_stable(p);
  const causality::DependencyVector& dv_v = recorder.volatile_dv(p);
  std::vector<CheckpointIndex> retained;
  for (CheckpointIndex g = 0; g <= last; ++g) {
    const causality::DvView dv_g = recorder.general_checkpoint_dv(p, g);
    const causality::DvView dv_next =
        recorder.general_checkpoint_dv(p, g + 1);
    for (std::size_t f = 0; f < n; ++f) {
      const auto pf = static_cast<ProcessId>(f);
      if (dv_v[pf] == dv_next[pf] && dv_v[pf] > dv_g[pf]) {
        retained.push_back(g);
        break;
      }
    }
  }
  return retained;
}

std::optional<std::vector<CheckpointIndex>> max_consistent_containing(
    const CcpRecorder& recorder, const Precedence& causal, const TargetSet& s) {
  const std::size_t n = recorder.process_count();
  RDTGC_EXPECTS(!s.empty());
  std::vector<CheckpointIndex> line(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<ProcessId>(i);
    const CheckpointIndex last_i = recorder.last_stable(pi);
    auto it = s.find(pi);
    if (it != s.end()) {
      RDTGC_EXPECTS(it->second >= 0 && it->second <= last_i + 1);
      line[i] = it->second;
      continue;
    }
    // Last checkpoint of p_i not causally preceded by any member of S;
    // the predicate is monotone in γ and false at γ = 0.
    CheckpointIndex k = last_i + 1;
    for (; k > 0; --k) {
      bool preceded = false;
      for (const auto& [q, sigma] : s)
        if (causal.precedes(q, sigma, pi, k)) {
          preceded = true;
          break;
        }
      if (!preceded) break;
    }
    line[i] = k;
  }
  if (!is_consistent_global_checkpoint(recorder, causal, line))
    return std::nullopt;
  return line;
}

std::optional<std::vector<CheckpointIndex>> min_consistent_containing(
    const CcpRecorder& recorder, const Precedence& causal, const TargetSet& s) {
  const std::size_t n = recorder.process_count();
  RDTGC_EXPECTS(!s.empty());
  std::vector<CheckpointIndex> line(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<ProcessId>(i);
    const CheckpointIndex last_i = recorder.last_stable(pi);
    auto it = s.find(pi);
    if (it != s.end()) {
      RDTGC_EXPECTS(it->second >= 0 && it->second <= last_i + 1);
      line[i] = it->second;
      continue;
    }
    // First checkpoint of p_i that precedes no member of S;
    // "c_i^γ → c_q^σ" is antitone in γ.
    CheckpointIndex k = 0;
    for (; k <= last_i + 1; ++k) {
      bool precedes_member = false;
      for (const auto& [q, sigma] : s)
        if (causal.precedes(pi, k, q, sigma)) {
          precedes_member = true;
          break;
        }
      if (!precedes_member) break;
    }
    if (k > last_i + 1) return std::nullopt;  // even v_i precedes S
    line[i] = k;
  }
  if (!is_consistent_global_checkpoint(recorder, causal, line))
    return std::nullopt;
  return line;
}

std::optional<std::vector<CheckpointIndex>> brute_force_extreme_consistent(
    const CcpRecorder& recorder, const Precedence& causal, const TargetSet& s,
    const std::vector<CheckpointIndex>& caps, bool want_max) {
  const std::size_t n = recorder.process_count();
  RDTGC_EXPECTS(caps.size() == n);
  std::vector<CheckpointIndex> assignment(n, 0);
  std::optional<std::vector<CheckpointIndex>> best;

  // Depth-first enumeration of all assignments within caps, honoring S.
  auto consistent_with_prefix = [&](std::size_t upto) {
    // Incremental pairwise check for position `upto` against 0..upto-1.
    for (std::size_t b = 0; b < upto; ++b) {
      if (causal.precedes(static_cast<ProcessId>(upto), assignment[upto],
                          static_cast<ProcessId>(b), assignment[b]) ||
          causal.precedes(static_cast<ProcessId>(b), assignment[b],
                          static_cast<ProcessId>(upto), assignment[upto]))
        return false;
    }
    return true;
  };

  // Iterative DFS over positions.
  std::vector<CheckpointIndex> lo(n, 0), hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = caps[i];
    auto it = s.find(static_cast<ProcessId>(i));
    if (it != s.end()) lo[i] = hi[i] = it->second;
  }
  std::size_t pos = 0;
  assignment[0] = lo[0] - 1;  // will be advanced first
  while (true) {
    ++assignment[pos];
    if (assignment[pos] > hi[pos]) {
      if (pos == 0) break;
      --pos;
      continue;
    }
    if (!consistent_with_prefix(pos)) continue;
    if (pos + 1 == n) {
      // Merge into the running extreme (lattice: componentwise max/min of
      // consistent lines containing S is itself consistent under RDT).
      if (!best) {
        best = assignment;
      } else {
        for (std::size_t i = 0; i < n; ++i)
          (*best)[i] = want_max ? std::max((*best)[i], assignment[i])
                                : std::min((*best)[i], assignment[i]);
      }
      continue;
    }
    ++pos;
    assignment[pos] = lo[pos] - 1;
  }
  if (best) {
    // The lattice extreme must itself be consistent; verify (this is part of
    // what the property tests assert).
    if (!is_consistent_global_checkpoint(recorder, causal, *best))
      return std::nullopt;
  }
  return best;
}

namespace {

const MessageInfo& live_message(const CcpRecorder& recorder,
                                sim::MessageId id) {
  RDTGC_EXPECTS(id >= 1 && id <= recorder.messages().size());
  const MessageInfo& m = recorder.messages()[id - 1];
  RDTGC_EXPECTS(m.live());
  return m;
}

}  // namespace

bool is_zigzag_sequence(const CcpRecorder& recorder,
                        const std::vector<sim::MessageId>& ids, ProcessId a,
                        CheckpointIndex alpha, ProcessId b,
                        CheckpointIndex beta) {
  RDTGC_EXPECTS(!ids.empty());
  const MessageInfo& first = live_message(recorder, ids.front());
  // (i) p_a sends m1 after c_a^alpha.
  if (first.src != a || first.send_interval < alpha + 1) return false;
  // (ii) each m_{i+1} leaves the receiver of m_i in the same or a later
  // checkpoint interval.
  for (std::size_t k = 0; k + 1 < ids.size(); ++k) {
    const MessageInfo& m = live_message(recorder, ids[k]);
    const MessageInfo& next = live_message(recorder, ids[k + 1]);
    if (m.dst != next.src) return false;
    if (next.send_interval < m.recv_interval) return false;
  }
  // (iii) p_b receives m_k before c_b^beta.
  const MessageInfo& last = live_message(recorder, ids.back());
  return last.dst == b && last.recv_interval <= beta;
}

bool is_causal_sequence(const CcpRecorder& recorder,
                        const std::vector<sim::MessageId>& ids) {
  for (std::size_t k = 0; k + 1 < ids.size(); ++k) {
    const MessageInfo& m = live_message(recorder, ids[k]);
    const MessageInfo& next = live_message(recorder, ids[k + 1]);
    if (m.dst != next.src) return false;
    // Same process: program order (serials) decides causal precedence.
    if (m.recv_serial >= next.send_serial) return false;
  }
  return true;
}

}  // namespace rdtgc::ccp
