// Independent validation of the R-graph zigzag engine: a literal
// Definition-3 search over message sequences (BFS on the "m_{i+1} may
// follow m_i" relation) must agree with ccp::ZigzagAnalysis on every pair of
// general checkpoints, across randomly scripted communication patterns —
// including non-RDT ones with crossing messages and Z-cycles.
#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "ccp/zigzag.hpp"
#include "harness/scenario.hpp"
#include "util/rng.hpp"

namespace rdtgc {
namespace {

/// Straight-from-Definition-3 zigzag decision over the recorded messages.
bool brute_zigzag(const ccp::CcpRecorder& recorder, ProcessId a,
                  CheckpointIndex alpha, ProcessId b, CheckpointIndex beta) {
  const auto& messages = recorder.messages();
  std::vector<std::size_t> live;
  for (std::size_t k = 0; k < messages.size(); ++k)
    if (messages[k].live()) live.push_back(k);

  std::vector<bool> visited(messages.size(), false);
  std::deque<std::size_t> frontier;
  for (const std::size_t k : live) {
    const auto& m = messages[k];
    if (m.src == a && m.send_interval >= alpha + 1) {  // condition (i)
      visited[k] = true;
      frontier.push_back(k);
    }
  }
  while (!frontier.empty()) {
    const auto& m = messages[frontier.front()];
    frontier.pop_front();
    if (m.dst == b && m.recv_interval <= beta) return true;  // condition (iii)
    for (const std::size_t k : live) {
      const auto& next = messages[k];
      if (!visited[k] && next.src == m.dst &&
          next.send_interval >= m.recv_interval) {  // condition (ii)
        visited[k] = true;
        frontier.push_back(k);
      }
    }
  }
  return false;
}

/// Random pattern: checkpoints, sends, and (possibly out-of-order, possibly
/// never) deliveries in a random interleaving.
std::unique_ptr<harness::Scenario> random_pattern(std::uint64_t seed,
                                                  std::size_t n, int actions) {
  auto scenario = std::make_unique<harness::Scenario>(
      n, ckpt::ProtocolKind::kUncoordinated, harness::GcChoice::kNone);
  util::Rng rng(seed);
  std::vector<std::string> undelivered;
  int label = 0;
  for (int k = 0; k < actions; ++k) {
    const auto p = static_cast<ProcessId>(rng.uniform(n));
    switch (rng.uniform(3)) {
      case 0:
        scenario->checkpoint(p);
        break;
      case 1: {
        auto dst = static_cast<ProcessId>(rng.uniform(n - 1));
        if (dst >= p) ++dst;
        undelivered.push_back("m" + std::to_string(label++));
        scenario->send(p, dst, undelivered.back());
        break;
      }
      case 2:
        if (!undelivered.empty()) {
          const std::size_t pick = rng.uniform(undelivered.size());
          scenario->deliver(undelivered[pick]);
          undelivered.erase(undelivered.begin() +
                            static_cast<std::ptrdiff_t>(pick));
        }
        break;
    }
  }
  // ~half of the remaining messages are delivered late, the rest stay lost.
  while (undelivered.size() > 1) {
    scenario->deliver(undelivered.back());
    undelivered.pop_back();
    if (!undelivered.empty()) undelivered.pop_back();  // this one is "lost"
  }
  return scenario;
}

using Param = std::tuple<std::uint64_t, std::size_t>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return "s" + std::to_string(std::get<0>(info.param)) + "_n" +
         std::to_string(std::get<1>(info.param));
}

class ZigzagBruteForce : public ::testing::TestWithParam<Param> {};

TEST_P(ZigzagBruteForce, RGraphEngineMatchesDefinition3Search) {
  const auto [seed, n] = GetParam();
  auto scenario = random_pattern(seed, n, 80);
  const auto& recorder = scenario->recorder();
  const ccp::ZigzagAnalysis zigzag(recorder);
  for (ProcessId a = 0; a < static_cast<ProcessId>(n); ++a) {
    const CheckpointIndex la = recorder.last_stable(a);
    for (CheckpointIndex alpha = 0; alpha <= la + 1; ++alpha) {
      for (ProcessId b = 0; b < static_cast<ProcessId>(n); ++b) {
        const CheckpointIndex lb = recorder.last_stable(b);
        for (CheckpointIndex beta = 0; beta <= lb + 1; ++beta) {
          ASSERT_EQ(zigzag.zigzag(a, alpha, b, beta),
                    brute_zigzag(recorder, a, alpha, b, beta))
              << "c_" << a << "^" << alpha << " ~> c_" << b << "^" << beta;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZigzagBruteForce,
    ::testing::Combine(::testing::Values(std::uint64_t{1}, std::uint64_t{7},
                                         std::uint64_t{42}, std::uint64_t{99},
                                         std::uint64_t{2024}),
                       ::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{5})),
    param_name);

TEST(ZigzagBruteForce, UselessDetectionMatchesOnRandomPatterns) {
  for (const std::uint64_t seed : {11ull, 33ull, 55ull}) {
    auto scenario = random_pattern(seed, 3, 60);
    const auto& recorder = scenario->recorder();
    const ccp::ZigzagAnalysis zigzag(recorder);
    for (ProcessId p = 0; p < 3; ++p)
      for (CheckpointIndex g = 0; g <= recorder.last_stable(p); ++g)
        ASSERT_EQ(zigzag.is_useless(p, g), brute_zigzag(recorder, p, g, p, g))
            << "s_" << p << "^" << g;
  }
}

}  // namespace
}  // namespace rdtgc
