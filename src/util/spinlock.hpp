// Tiny test-and-test-and-set spinlock for short critical sections.
//
// The striped stores guard per-stripe mutations with one of these instead of
// a std::mutex: the protected work (a binary search plus a small vector
// shift) is a few hundred nanoseconds, far below the cost of parking a
// thread, and an atomic_flag adds no per-lock allocation — which keeps the
// store's zero-allocation contracts intact in striped mode.  Lock/unlock
// satisfy Cpp17BasicLockable, so std::lock_guard / std::scoped_lock work.
//
// Not fair and not recursive: strictly for leaf-level critical sections that
// never block, never allocate, and never acquire another lock.  Anything
// longer belongs behind a std::mutex.
#pragma once

#include <atomic>

namespace rdtgc::util {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    // Test-and-test-and-set: spin on the cheap relaxed read so a contended
    // lock does not storm the cache line with RMW traffic.
    while (flag_.test_and_set(std::memory_order_acquire))
      while (flag_.test(std::memory_order_relaxed)) {
      }
  }

  bool try_lock() noexcept {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace rdtgc::util
