// CCP-analysis correctness against first principles:
//  * Theorem 1's obsolete set == Definition 7 needlessness (membership in no
//    recovery line over all 2^n faulty sets, Lemma 3);
//  * Lemma 1's recovery line is consistent, maximal, and excludes faulty
//    volatile states;
//  * Wang-style min/max consistent global checkpoints == brute-force
//    enumeration.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ccp/analysis.hpp"
#include "ccp/precedence.hpp"
#include "ccp/zigzag.hpp"
#include "harness/figures.hpp"
#include "helpers.hpp"

namespace rdtgc {
namespace {

using Param = std::tuple<std::uint64_t, std::size_t>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return "s" + std::to_string(std::get<0>(info.param)) + "_n" +
         std::to_string(std::get<1>(info.param));
}

std::unique_ptr<harness::System> small_rdt_run(std::uint64_t seed,
                                               std::size_t n) {
  test::RunSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.duration = 600;
  spec.gc = harness::GcChoice::kNone;  // keep the full history
  return test::run_workload(spec);
}

class ObsoleteCharacterization : public ::testing::TestWithParam<Param> {};

TEST_P(ObsoleteCharacterization, Theorem1EqualsNeedlessness) {
  const auto [seed, n] = GetParam();
  auto system = small_rdt_run(seed, n);
  const auto& recorder = system->recorder();
  const ccp::CausalGraph causal(recorder);
  const auto obsolete = ccp::obsolete_theorem1(recorder, causal);

  // Definition 7: needless iff member of no recovery line R_F, F ⊆ Π.
  std::set<std::pair<ProcessId, CheckpointIndex>> in_some_line;
  for (int mask = 1; mask < (1 << n); ++mask) {
    std::vector<bool> faulty(n);
    for (std::size_t p = 0; p < n; ++p) faulty[p] = mask & (1 << p);
    const auto line = ccp::recovery_line_lemma1(recorder, causal, faulty);
    for (std::size_t p = 0; p < n; ++p) {
      const auto pid = static_cast<ProcessId>(p);
      if (line[p] <= recorder.last_stable(pid))  // stable member
        in_some_line.insert({pid, line[p]});
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    const auto pid = static_cast<ProcessId>(p);
    for (CheckpointIndex g = 0; g <= recorder.last_stable(pid); ++g) {
      const bool needless = in_some_line.count({pid, g}) == 0;
      EXPECT_EQ(obsolete[p][static_cast<std::size_t>(g)], needless)
          << "s_" << p << "^" << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObsoleteCharacterization,
    ::testing::Combine(::testing::Values(std::uint64_t{2}, std::uint64_t{31},
                                         std::uint64_t{64}),
                       ::testing::Values(std::size_t{3}, std::size_t{4})),
    param_name);

class RecoveryLineProperties : public ::testing::TestWithParam<Param> {};

TEST_P(RecoveryLineProperties, Lemma1LineIsConsistentMaximalAndExcludesFaultyVolatiles) {
  const auto [seed, n] = GetParam();
  auto system = small_rdt_run(seed, n);
  const auto& recorder = system->recorder();
  const ccp::CausalGraph causal(recorder);
  const ccp::ZigzagAnalysis zigzag(recorder);

  for (int mask = 1; mask < (1 << n); ++mask) {
    std::vector<bool> faulty(n);
    for (std::size_t p = 0; p < n; ++p) faulty[p] = mask & (1 << p);
    const auto line = ccp::recovery_line_lemma1(recorder, causal, faulty);

    ASSERT_TRUE(ccp::is_consistent_global_checkpoint(recorder, causal, line));
    for (std::size_t p = 0; p < n; ++p) {
      if (faulty[p]) {
        EXPECT_LE(line[p], recorder.last_stable(static_cast<ProcessId>(p)))
            << "faulty volatile state in the line";
      }
    }
    // The general R-graph algorithm must agree on RDT patterns.
    EXPECT_EQ(line, zigzag.recovery_line(faulty)) << "mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryLineProperties,
    ::testing::Combine(::testing::Values(std::uint64_t{5}, std::uint64_t{21},
                                         std::uint64_t{90}),
                       ::testing::Values(std::size_t{3}, std::size_t{5})),
    param_name);

class MinMaxConsistent : public ::testing::TestWithParam<Param> {};

TEST_P(MinMaxConsistent, MatchBruteForceEnumeration) {
  const auto [seed, n] = GetParam();
  test::RunSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.duration = 300;  // enumeration is exponential in history length
  spec.gc = harness::GcChoice::kNone;
  auto system = test::run_workload(spec);
  const auto& recorder = system->recorder();
  const ccp::CausalGraph causal(recorder);

  std::vector<CheckpointIndex> caps(n);
  for (std::size_t p = 0; p < n; ++p)
    caps[p] = recorder.last_stable(static_cast<ProcessId>(p)) + 1;

  // All singleton targets plus a few pairs.
  std::vector<ccp::TargetSet> targets;
  for (std::size_t p = 0; p < n; ++p)
    for (CheckpointIndex g = 0; g <= caps[p]; ++g)
      targets.push_back({{static_cast<ProcessId>(p), g}});
  for (std::size_t p = 0; p + 1 < n; ++p)
    targets.push_back({{static_cast<ProcessId>(p), 1},
                       {static_cast<ProcessId>(p + 1), caps[p + 1] - 1}});

  for (const auto& s : targets) {
    const auto fast_max = ccp::max_consistent_containing(recorder, causal, s);
    const auto brute_max =
        ccp::brute_force_extreme_consistent(recorder, causal, s, caps, true);
    EXPECT_EQ(fast_max, brute_max);
    const auto fast_min = ccp::min_consistent_containing(recorder, causal, s);
    const auto brute_min =
        ccp::brute_force_extreme_consistent(recorder, causal, s, caps, false);
    EXPECT_EQ(fast_min, brute_min);
    if (fast_max && fast_min) {
      for (std::size_t p = 0; p < n; ++p)
        EXPECT_LE((*fast_min)[p], (*fast_max)[p]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinMaxConsistent,
    ::testing::Combine(::testing::Values(std::uint64_t{8}, std::uint64_t{44}),
                       ::testing::Values(std::size_t{2}, std::size_t{3})),
    param_name);

TEST(MinMaxConsistent, InconsistentTargetYieldsNullopt) {
  // Figure 1: s_1^0 -> s_2^1 via m1 (paper: {s01, s12} inconsistent-ish
  // pairs exist); craft a target set containing a causally-related pair.
  auto scenario = harness::figures::figure1(true);
  const auto& recorder = scenario->recorder();
  const ccp::CausalGraph causal(recorder);
  // c_0^0 -> c_1^1 (m1 sent after s_1^0, received before s_2^1).
  ASSERT_TRUE(causal.precedes(0, 0, 1, 1));
  const ccp::TargetSet s{{0, 0}, {1, 1}};
  EXPECT_EQ(ccp::max_consistent_containing(recorder, causal, s), std::nullopt);
  EXPECT_EQ(ccp::min_consistent_containing(recorder, causal, s), std::nullopt);
}

TEST(MinMaxConsistent, WholeLineTargetReturnsItself) {
  auto scenario = harness::figures::figure3();
  const auto& recorder = scenario->recorder();
  const ccp::CausalGraph causal(recorder);
  const std::vector<bool> faulty = {false, true, true, false};
  const auto line = ccp::recovery_line_lemma1(recorder, causal, faulty);
  ccp::TargetSet s;
  for (ProcessId p = 0; p < 4; ++p) s[p] = line[static_cast<std::size_t>(p)];
  const auto max_line = ccp::max_consistent_containing(recorder, causal, s);
  ASSERT_TRUE(max_line.has_value());
  EXPECT_EQ(*max_line, line);
}

TEST(Theorem2, WeakerThanTheorem1) {
  // Corollary-1 retention is a safe over-approximation: it must cover every
  // non-obsolete checkpoint (Theorem 2 implies Theorem 1's condition).
  auto system = small_rdt_run(123, 4);
  const auto& recorder = system->recorder();
  const ccp::CausalGraph causal(recorder);
  const auto obsolete = ccp::obsolete_theorem1(recorder, causal);
  for (ProcessId p = 0; p < 4; ++p) {
    const auto retained = ccp::retained_corollary1(recorder, p);
    const std::set<CheckpointIndex> retained_set(retained.begin(),
                                                 retained.end());
    for (CheckpointIndex g = 0; g <= recorder.last_stable(p); ++g) {
      if (!obsolete[static_cast<std::size_t>(p)][static_cast<std::size_t>(g)]) {
        EXPECT_TRUE(retained_set.count(g))
            << "non-obsolete s_" << p << "^" << g
            << " missing from the Corollary-1 retained set";
      }
    }
  }
}

TEST(Theorem2, LastCheckpointAlwaysRetained) {
  auto system = small_rdt_run(7, 3);
  const auto& recorder = system->recorder();
  for (ProcessId p = 0; p < 3; ++p) {
    const auto retained = ccp::retained_corollary1(recorder, p);
    ASSERT_FALSE(retained.empty());
    EXPECT_EQ(retained.back(), recorder.last_stable(p));
  }
}

}  // namespace
}  // namespace rdtgc
