// Algorithm 1 of the paper: the Uncollected-Checkpoints table (UC) and
// Checkpoint Control Blocks (CCB).
//
// UC[f] names the checkpoint this process retains *because of* process p_f
// (Theorem 2: the most recent local checkpoint not causally preceded by
// s_f^lastk).  Several UC entries may pin the same checkpoint, so each
// retained checkpoint has one CCB holding a reference count; when the count
// drops to zero the checkpoint is obsolete and is eliminated through the
// callback.
//
// The paper manipulates CCBs through pointers; we keep the identical
// semantics with an index-keyed store (a CCB is uniquely identified by its
// checkpoint index).  Because at most n+1 checkpoints are ever live (§4.5)
// and their indices are created in increasing order, the CCBs live in a flat
// sorted vector with capacity reserved up front: every operation is a binary
// search plus contiguous moves, and steady-state mutation never allocates.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "causality/types.hpp"

namespace rdtgc::core {

class UcTable {
 public:
  /// Called when a reference count reaches zero: the checkpoint is obsolete.
  /// Must not reenter the table (Algorithm 1 has the same restriction: the
  /// elimination is a storage action, not a table action).
  using EliminateFn = std::function<void(CheckpointIndex)>;

  /// Sizes UC for `process_count` entries and reserves the n+1 CCB capacity
  /// up front (the one-time allocations; every Algorithm-1/2 procedure
  /// below is then allocation-free in steady state).
  UcTable(std::size_t process_count, EliminateFn eliminate);

  // ---- Algorithm 1 procedures ----

  /// `release(j)`: drop UC[j]'s reference; eliminate the checkpoint if the
  /// count reaches zero.  O(log n) lookup + contiguous erase; never
  /// allocates.
  void release(ProcessId j);

  /// `link(j, i)`: make UC[j] reference the same CCB as UC[i] (which must be
  /// set) and increment its count.  Precondition: UC[j] is Null (callers
  /// release(j) first, as Algorithm 2 does).  Never allocates.
  void link(ProcessId j, ProcessId i);

  /// `newCCB(j, ind)`: create a CCB for checkpoint `ind` with count 1 and
  /// make UC[j] reference it.  Precondition: UC[j] is Null and no CCB for
  /// `ind` exists.  Allocation-free within the reserved n+1 capacity.
  void new_ccb(ProcessId j, CheckpointIndex index);

  // ---- Batched Algorithm 2 receive handler ----

  /// Equivalent to `for j in changed: release(j); link(j, self)` in order,
  /// with the bookkeeping coalesced: entries already referencing UC[self]'s
  /// checkpoint are left untouched (their release+link nets to zero) and the
  /// self CCB's reference count is adjusted once by +k instead of k
  /// increments.  Eliminations fire in the same order as the per-peer
  /// sequence.  Preconditions: UC[self] is set and every id in `changed` is
  /// valid and != self.  Allocation-free.
  void rebind_to(std::span<const ProcessId> changed, ProcessId self);

  // ---- Algorithm 3 support (rollback rebuild) ----

  /// Forget every entry and CCB without eliminating anything (the rolled-
  /// back storage state is rebuilt from scratch, Algorithm 3 line 7).
  /// Never allocates (capacity is kept).
  void clear();

  /// Register a CCB with count 0 (Algorithm 3 line 7).  Allocation-free
  /// within the reserved capacity.
  void add_ccb(CheckpointIndex index);

  /// UC[f] <- CCB of `index`; count++ (Algorithm 3 lines 11-12).
  /// Precondition: UC[f] is Null and the CCB exists.  Never allocates.
  void reference(ProcessId f, CheckpointIndex index);

  /// Eliminate every checkpoint whose count is 0 (Algorithm 3 lines 15-17).
  /// Never allocates (the eliminate callback may).
  void drop_zero_count();

  // ---- Introspection ----

  /// Checkpoint UC[j] references, or nullopt for Null.  Never allocates.
  std::optional<CheckpointIndex> entry(ProcessId j) const;
  /// Reference count of the CCB for `index` (0 if no such CCB).  Never
  /// allocates.
  int ref_count(CheckpointIndex index) const;
  /// Distinct checkpoints currently referenced by a CCB, ascending.
  /// Allocates the returned vector (debug/test path, not the hot path).
  std::vector<CheckpointIndex> tracked_checkpoints() const;
  /// Render like the paper's Figure 4: "(0, 3, *)" (* = Null).  Allocates
  /// the string (debug/test path).
  std::string to_string() const;

 private:
  struct Ccb {
    CheckpointIndex index;
    int count;
  };

  /// Iterator to the CCB for `index`, or end() if none; binary search over
  /// the flat sorted store.
  std::vector<Ccb>::iterator find_ccb(CheckpointIndex index);
  std::vector<Ccb>::const_iterator find_ccb(CheckpointIndex index) const;
  /// Sorted insert of a fresh CCB (precondition: no CCB for `index` exists).
  void insert_ccb(CheckpointIndex index, int count);

  EliminateFn eliminate_;
  std::vector<std::optional<CheckpointIndex>> uc_;
  std::vector<Ccb> ccb_;  // sorted by checkpoint index; capacity n+1
};

}  // namespace rdtgc::core
