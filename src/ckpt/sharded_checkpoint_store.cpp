#include "ckpt/sharded_checkpoint_store.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace rdtgc::ckpt {

ShardedCheckpointStore::ShardedCheckpointStore(ProcessId owner,
                                               std::size_t shard_count)
    : owner_(owner),
      mask_(shard_count - 1),
      shards_(shard_count, CheckpointStore(owner)) {
  RDTGC_EXPECTS(shard_count >= 1);
  RDTGC_EXPECTS((shard_count & (shard_count - 1)) == 0);  // power of two
}

void ShardedCheckpointStore::note_put(std::uint64_t bytes) {
  bytes_ += bytes;
  ++count_;
  ++stats_.stored;
  stats_.peak_count = std::max(stats_.peak_count, count_);
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_);
  merged_dirty_ = true;
}

void ShardedCheckpointStore::put(StoredCheckpoint checkpoint) {
  RDTGC_EXPECTS(checkpoint.index >= 0);
  // Global strict increase over the *currently stored* set, exactly the
  // flat store's contract; the per-shard check is then trivially satisfied.
  RDTGC_EXPECTS(count_ == 0 || checkpoint.index > last_index());
  const std::uint64_t bytes = checkpoint.bytes;
  shard_for(checkpoint.index).put(std::move(checkpoint));
  note_put(bytes);
}

void ShardedCheckpointStore::put(CheckpointIndex index,
                                 const causality::DependencyVector& dv,
                                 SimTime stored_at, std::uint64_t bytes) {
  RDTGC_EXPECTS(index >= 0);
  RDTGC_EXPECTS(count_ == 0 || index > last_index());
  // The shard's copy-in put reuses the DV buffer recycled by that shard's
  // last collect() — the per-shard recycler invariant.
  shard_for(index).put(index, dv, stored_at, bytes);
  note_put(bytes);
}

bool ShardedCheckpointStore::contains(CheckpointIndex index) const {
  return shards_[shard_of(index)].contains(index);
}

const StoredCheckpoint& ShardedCheckpointStore::get(
    CheckpointIndex index) const {
  return shards_[shard_of(index)].get(index);
}

void ShardedCheckpointStore::collect(CheckpointIndex index) {
  CheckpointStore& shard = shard_for(index);
  const std::uint64_t before = shard.bytes();
  shard.collect(index);  // throws if absent, before any global bookkeeping
  bytes_ -= before - shard.bytes();
  --count_;
  ++stats_.collected;
  merged_dirty_ = true;
}

std::size_t ShardedCheckpointStore::discard_after(CheckpointIndex ri) {
  std::size_t discarded = 0;
  for (CheckpointStore& shard : shards_) {
    const std::uint64_t before = shard.bytes();
    discarded += shard.discard_after(ri);
    bytes_ -= before - shard.bytes();
  }
  count_ -= discarded;
  stats_.discarded += discarded;
  merged_dirty_ = true;
  return discarded;
}

const std::vector<CheckpointIndex>& ShardedCheckpointStore::stored_indices()
    const {
  if (merged_dirty_) {
    merged_.clear();
    for (const CheckpointStore& shard : shards_) {
      const std::vector<CheckpointIndex>& part = shard.stored_indices();
      merged_.insert(merged_.end(), part.begin(), part.end());
    }
    // Each shard is sorted but low-bit striping interleaves them globally;
    // with <= n+1 live checkpoints an in-place sort beats a k-way merge and
    // keeps the rebuild allocation-free once the cache capacity is warm.
    std::sort(merged_.begin(), merged_.end());
    merged_dirty_ = false;
  }
  return merged_;
}

CheckpointIndex ShardedCheckpointStore::last_index() const {
  RDTGC_EXPECTS(count_ > 0);
  CheckpointIndex last = kNoCheckpoint;
  for (const CheckpointStore& shard : shards_)
    if (shard.count() > 0) last = std::max(last, shard.last_index());
  return last;
}

}  // namespace rdtgc::ckpt
