#include "harness/sweep.hpp"

#include <atomic>

#include "util/check.hpp"
#include "util/spinlock.hpp"

namespace rdtgc::harness {

namespace {

/// Shared fan-out shape of the sweep entry points: run one body per job
/// into job-indexed slots, with optional serialized progress/cancellation.
template <typename RunJob>
std::vector<SweepRun> run_jobs(FleetRunner& fleet, std::size_t total,
                               const RunJob& run_job,
                               const SweepProgress& progress) {
  std::vector<SweepRun> runs(total);
  std::atomic<bool> cancelled{false};
  std::atomic<std::size_t> completed{0};
  util::SpinLock progress_lock;
  fleet.run(total, [&](std::size_t job, WorkerContext& worker) {
    // Job-indexed slot: no result ever crosses between jobs, so the only
    // thing scheduling can change is timing.
    if (!cancelled.load(std::memory_order_acquire)) {
      runs[job] = run_job(job, worker);
      if (progress != nullptr) {
        const std::size_t done =
            completed.fetch_add(1, std::memory_order_acq_rel) + 1;
        progress_lock.lock();
        const bool keep_going = cancelled.load(std::memory_order_acquire)
                                    ? false
                                    : progress(done, total);
        progress_lock.unlock();
        if (!keep_going) cancelled.store(true, std::memory_order_release);
      }
    }
  });
  return runs;
}

}  // namespace

std::vector<SweepRun> run_seed_sweep(FleetRunner& fleet,
                                     const std::vector<std::uint64_t>& seeds,
                                     const SweepBody& body) {
  return run_seed_sweep(fleet, seeds, body, nullptr);
}

std::vector<SweepRun> run_seed_sweep(FleetRunner& fleet,
                                     const std::vector<std::uint64_t>& seeds,
                                     const SweepBody& body,
                                     const SweepProgress& progress) {
  RDTGC_EXPECTS(body != nullptr);
  auto runs = run_jobs(
      fleet, seeds.size(),
      [&](std::size_t job, WorkerContext& worker) {
        SweepRun run = body(seeds[job], worker);
        run.seed = seeds[job];
        return run;
      },
      progress);
  // Cancelled slots still carry their seed, so callers can tell them apart.
  for (std::size_t job = 0; job < runs.size(); ++job)
    runs[job].seed = seeds[job];
  return runs;
}

std::vector<SweepRun> run_churn_sweep(FleetRunner& fleet,
                                      const std::vector<ChurnPoint>& points,
                                      const ChurnBody& body,
                                      const SweepProgress& progress) {
  RDTGC_EXPECTS(body != nullptr);
  auto runs = run_jobs(
      fleet, points.size(),
      [&](std::size_t job, WorkerContext& worker) {
        SweepRun run = body(points[job], worker);
        run.seed = points[job].seed;
        return run;
      },
      progress);
  for (std::size_t job = 0; job < runs.size(); ++job)
    runs[job].seed = points[job].seed;
  return runs;
}

std::vector<ChurnPoint> churn_grid(const std::vector<std::uint64_t>& seeds,
                                   const std::vector<SimTime>& mean_intervals,
                                   double restart_prob) {
  RDTGC_EXPECTS(restart_prob >= 0.0 && restart_prob <= 1.0);
  std::vector<ChurnPoint> grid;
  grid.reserve(seeds.size() * mean_intervals.size());
  for (const SimTime interval : mean_intervals) {
    RDTGC_EXPECTS(interval >= 1);
    for (const std::uint64_t seed : seeds) {
      ChurnPoint point;
      point.seed = seed;
      point.mean_interval = interval;
      point.restart_prob = restart_prob;
      grid.push_back(point);
    }
  }
  return grid;
}

SweepSummary summarize_sweep(const std::vector<SweepRun>& runs) {
  SweepSummary summary;
  for (const SweepRun& run : runs) {
    summary.storage.merge(run.storage);
    summary.final_storage.add(run.final_storage);
    summary.collected.add(static_cast<double>(run.collected));
    summary.control_messages.add(static_cast<double>(run.control_messages));
    summary.forced_checkpoints.add(
        static_cast<double>(run.forced_checkpoints));
    summary.durability_lag.merge(run.durability_lag);
    summary.peak_durability_lag.add(run.peak_durability_lag);
    ++summary.runs;
  }
  return summary;
}

std::vector<std::uint64_t> seed_range(std::uint64_t base, std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t k = 0; k < count; ++k) seeds[k] = base + k;
  return seeds;
}

}  // namespace rdtgc::harness
