// Figure 1 reproduction: the example CCP of §2.2 with its zigzag-path
// classification, and the role of m3 in preserving RDT.
//
// Paper facts verified here:
//  * [m1,m2] and [m1,m4] are C-paths; [m5,m4] is a Z-path;
//  * the pattern satisfies RDT;
//  * without m3, [m5,m4] is a Z-path from s_1^1 to s_3^2 with s_1^1 ↛ s_3^2
//    (an RDT violation at exactly that pair).
#include <iostream>

#include "bench_common.hpp"
#include "ccp/analysis.hpp"
#include "ccp/precedence.hpp"
#include "ccp/zigzag.hpp"
#include "harness/figures.hpp"

using namespace rdtgc;

namespace {

std::vector<sim::MessageId> ids(const harness::Scenario& scenario,
                                const std::vector<std::string>& labels) {
  std::vector<sim::MessageId> out;
  for (const auto& label : labels) out.push_back(scenario.message_id(label));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options(argc, argv, {});
  bench::banner("Figure 1: example CCP, zigzag paths and RDT");

  auto scenario = harness::figures::figure1(true);
  const auto& recorder = scenario->recorder();

  util::Table paths({"path", "zigzag (Def. 3)", "causal (C-path)", "class"});
  struct Case {
    std::string name;
    std::vector<std::string> labels;
    ProcessId a;
    CheckpointIndex alpha;
    ProcessId b;
    CheckpointIndex beta;
  };
  const std::vector<Case> cases = {
      {"[m1,m2]", {"m1", "m2"}, 0, 0, 2, 1},
      {"[m1,m4]", {"m1", "m4"}, 0, 0, 2, 2},
      {"[m5,m4]", {"m5", "m4"}, 0, 1, 2, 2},
  };
  bool class_ok = true;
  for (const Case& c : cases) {
    const auto sequence = ids(*scenario, c.labels);
    const bool zigzag =
        ccp::is_zigzag_sequence(recorder, sequence, c.a, c.alpha, c.b, c.beta);
    const bool causal = ccp::is_causal_sequence(recorder, sequence);
    paths.begin_row()
        .add_cell(c.name)
        .add_cell(zigzag ? "yes" : "no")
        .add_cell(causal ? "yes" : "no")
        .add_cell(causal ? "C-path" : (zigzag ? "Z-path" : "-"));
  }
  bench::emit(paths, "path classification (paper: m1m2, m1m4 causal; m5m4 Z)",
              options.csv());
  class_ok = ccp::is_causal_sequence(recorder, ids(*scenario, {"m1", "m2"})) &&
             ccp::is_causal_sequence(recorder, ids(*scenario, {"m1", "m4"})) &&
             !ccp::is_causal_sequence(recorder, ids(*scenario, {"m5", "m4"}));
  bench::verdict(class_ok, "path classes match the paper");

  const ccp::CausalGraph causal(recorder);
  const ccp::ZigzagAnalysis zigzag(recorder);
  const auto violation = ccp::check_rdt(recorder, causal, zigzag);
  bench::verdict(!violation.has_value(), "CCP with m3 is RD-trackable");

  auto without = harness::figures::figure1(false);
  const ccp::CausalGraph causal2(without->recorder());
  const ccp::ZigzagAnalysis zigzag2(without->recorder());
  const auto violation2 = ccp::check_rdt(without->recorder(), causal2, zigzag2);
  const bool exact = violation2.has_value() && violation2->a == 0 &&
                     violation2->alpha == 1 && violation2->b == 2 &&
                     violation2->beta == 2;
  if (violation2)
    std::cout << "without m3: " << violation2->to_string()
              << "  (paper: s_1^1 ~> s_3^2 undoubled)\n";
  bench::verdict(exact, "removing m3 breaks RDT exactly at s_1^1 ~> s_3^2");
  return (class_ok && !violation && exact) ? 0 : 1;
}
