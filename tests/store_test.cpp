// Unit tests for the stable-storage model (ckpt::CheckpointStore).
#include <gtest/gtest.h>

#include "ckpt/checkpoint_store.hpp"
#include "util/check.hpp"

namespace rdtgc::ckpt {
namespace {

StoredCheckpoint make(CheckpointIndex index, std::uint64_t bytes = 1) {
  StoredCheckpoint c;
  c.index = index;
  c.dv = causality::DependencyVector(2);
  c.dv.at(0) = index;
  c.bytes = bytes;
  return c;
}

TEST(CheckpointStore, PutAndGet) {
  CheckpointStore store(0);
  store.put(make(0, 5));
  ASSERT_TRUE(store.contains(0));
  EXPECT_EQ(store.get(0).bytes, 5u);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.bytes(), 5u);
  EXPECT_EQ(store.owner(), 0);
}

TEST(CheckpointStore, IndicesMustIncrease) {
  CheckpointStore store(0);
  store.put(make(0));
  store.put(make(3));
  EXPECT_THROW(store.put(make(2)), util::ContractViolation);
  EXPECT_THROW(store.put(make(3)), util::ContractViolation);
}

TEST(CheckpointStore, CopyInPutMatchesValuePut) {
  CheckpointStore store(0);
  causality::DependencyVector dv(3);
  dv.at(1) = 4;
  store.put(7, dv, 12, 9);
  ASSERT_TRUE(store.contains(7));
  EXPECT_EQ(store.get(7).index, 7);
  EXPECT_EQ(store.get(7).dv, dv);
  EXPECT_EQ(store.get(7).stored_at, 12u);
  EXPECT_EQ(store.get(7).bytes, 9u);
  EXPECT_EQ(store.bytes(), 9u);
  // The recycled-buffer path: collect then put again must not corrupt the
  // stored vector (the DV is copied, not aliased).
  store.collect(7);
  dv.at(2) = 1;
  store.put(8, dv, 13, 2);
  EXPECT_EQ(store.get(8).dv, dv);
  dv.at(0) = 99;
  EXPECT_NE(store.get(8).dv, dv);
  EXPECT_THROW(store.put(8, dv, 14, 1), util::ContractViolation);
}

TEST(CheckpointStore, CollectRemovesAndCounts) {
  CheckpointStore store(0);
  store.put(make(0, 2));
  store.put(make(1, 3));
  store.collect(0);
  EXPECT_FALSE(store.contains(0));
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.bytes(), 3u);
  EXPECT_EQ(store.stats().collected, 1u);
}

TEST(CheckpointStore, CollectMissingRejected) {
  CheckpointStore store(0);
  store.put(make(0));
  EXPECT_THROW(store.collect(1), util::ContractViolation);
  store.collect(0);
  EXPECT_THROW(store.collect(0), util::ContractViolation);
}

TEST(CheckpointStore, DiscardAfterKeepsPrefix) {
  CheckpointStore store(0);
  for (CheckpointIndex i = 0; i < 5; ++i) store.put(make(i));
  EXPECT_EQ(store.discard_after(2), 2u);
  EXPECT_EQ(store.stored_indices(), (std::vector<CheckpointIndex>{0, 1, 2}));
  EXPECT_EQ(store.stats().discarded, 2u);
  EXPECT_EQ(store.stats().collected, 0u);  // rollback discards are not GC
}

TEST(CheckpointStore, DiscardAfterAllowsIndexReuse) {
  CheckpointStore store(0);
  store.put(make(0));
  store.put(make(1));
  store.discard_after(0);
  store.put(make(1));  // lineage restart
  EXPECT_TRUE(store.contains(1));
}

TEST(CheckpointStore, PeakTracksTransientOccupancy) {
  CheckpointStore store(0);
  store.put(make(0, 4));
  store.put(make(1, 4));
  store.put(make(2, 4));
  store.collect(0);
  store.collect(1);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.stats().peak_count, 3u);
  EXPECT_EQ(store.stats().peak_bytes, 12u);
}

TEST(CheckpointStore, LastIndexSkipsHoles) {
  CheckpointStore store(0);
  store.put(make(0));
  store.put(make(1));
  store.put(make(2));
  store.collect(1);
  EXPECT_EQ(store.last_index(), 2);
  EXPECT_EQ(store.stored_indices(), (std::vector<CheckpointIndex>{0, 2}));
}

TEST(CheckpointStore, StoredCountAccumulates) {
  CheckpointStore store(0);
  store.put(make(0));
  store.put(make(1));
  store.collect(0);
  store.put(make(2));
  EXPECT_EQ(store.stats().stored, 3u);
}

}  // namespace
}  // namespace rdtgc::ckpt
