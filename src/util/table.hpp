// Minimal ASCII table renderer used by benchmark binaries to print the
// paper-style result tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace rdtgc::util {

/// An ASCII table with a header row and homogeneous string cells.
/// Numeric convenience overloads format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row. Subsequent add_cell calls fill it left to right.
  Table& begin_row();
  Table& add_cell(std::string value);
  /// Integral cell.
  template <typename T>
    requires std::is_integral_v<T>
  Table& add_cell(T value) {
    return add_cell(std::to_string(value));
  }
  /// Floating-point cell rendered with `precision` digits after the point.
  Table& add_cell(double value, int precision = 2);

  /// Number of data rows so far.
  std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment; `title` prints above the table if nonempty.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Render as CSV (header + rows), for machine-readable output.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rdtgc::util
