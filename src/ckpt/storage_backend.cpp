#include "ckpt/storage_backend.hpp"

#include <memory>

#include "ckpt/checkpoint_store.hpp"
#include "ckpt/log_backend.hpp"
#include "ckpt/mmap_backend.hpp"
#include "util/check.hpp"

namespace rdtgc::ckpt {

const char* backend_kind_name(StorageBackendKind kind) {
  switch (kind) {
    case StorageBackendKind::kInMemory:
      return "memory";
    case StorageBackendKind::kMmapFile:
      return "mmap";
    case StorageBackendKind::kLogStructured:
      return "log";
  }
  RDTGC_ASSERT(false);
  return "?";
}

const char* durability_mode_name(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kSync:
      return "sync";
    case DurabilityMode::kGroupCommit:
      return "group";
    case DurabilityMode::kBackground:
      return "background";
  }
  RDTGC_ASSERT(false);
  return "?";
}

std::string StorageConfig::stripe_file(ProcessId owner,
                                       std::size_t stripe) const {
  const char* ext = kind == StorageBackendKind::kMmapFile ? ".seg" : ".log";
  return directory + "/p" + std::to_string(owner) + "_s" +
         std::to_string(stripe) + ext;
}

std::string StorageConfig::meta_file(ProcessId owner) const {
  return directory + "/p" + std::to_string(owner) + ".meta";
}

std::unique_ptr<StorageBackend> make_backend(const StorageConfig& config,
                                             ProcessId owner,
                                             std::size_t stripe) {
  switch (config.kind) {
    case StorageBackendKind::kInMemory:
      return std::make_unique<CheckpointStore>(owner);
    case StorageBackendKind::kMmapFile:
      RDTGC_EXPECTS(!config.directory.empty());
      return std::make_unique<MmapFileBackend>(
          owner, config.stripe_file(owner, stripe), config.open_mode,
          config.initial_slots);
    case StorageBackendKind::kLogStructured:
      RDTGC_EXPECTS(!config.directory.empty());
      return std::make_unique<LogStructuredBackend>(
          owner, config.stripe_file(owner, stripe), config.open_mode,
          config.compact_min_records, config.compact_dead_ratio);
  }
  RDTGC_ASSERT(false);
  return nullptr;
}

}  // namespace rdtgc::ckpt
