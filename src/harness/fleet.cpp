#include "harness/fleet.hpp"

#include "util/check.hpp"

namespace rdtgc::harness {

FleetRunner::FleetRunner(FleetConfig config) : config_(config) {
  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  contexts_.resize(workers);
  queues_.reserve(workers);
  util::Rng seeder(config.seed);
  for (std::size_t w = 0; w < workers; ++w) {
    contexts_[w].worker_id = w;
    contexts_[w].rng = seeder.split();
    queues_.push_back(std::make_unique<QueueShard>());
  }
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

FleetRunner::~FleetRunner() {
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool FleetRunner::pop_or_steal(std::size_t w, std::size_t& out) {
  {
    QueueShard& own = *queues_[w];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.jobs.empty()) {
      out = own.jobs.front();
      own.jobs.pop_front();
      return true;
    }
  }
  // Own queue drained: steal from the victims' cold ends, scanning the ring
  // from the right neighbour so thieves spread out instead of mobbing
  // worker 0.
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    QueueShard& victim = *queues_[(w + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.jobs.empty()) {
      out = victim.jobs.back();
      victim.jobs.pop_back();
      ++contexts_[w].steals;
      return true;
    }
  }
  return false;
}

void FleetRunner::worker_main(std::size_t w) {
  WorkerContext& context = contexts_[w];
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(batch_mutex_);
  for (;;) {
    // Gate on job_ as well as the generation: a worker that slept through a
    // whole batch (possible — the fast workers may drain it first) would
    // otherwise wake between batches, see generation_ != seen with
    // job_ == nullptr, and walk into the queues just as the next run() is
    // dealing jobs — popping one with no job function to call.  With the
    // gate it only ever enters a batch that is in flight, and run() cannot
    // retire a batch while it is inside (active_workers_ accounting).
    work_cv_.wait(lock, [&] {
      return shutdown_ || (generation_ != seen && job_ != nullptr);
    });
    if (shutdown_) return;
    seen = generation_;
    const Job* job = job_;
    ++active_workers_;
    lock.unlock();

    std::size_t index = 0;
    while (pop_or_steal(w, index)) {
      try {
        (*job)(index, context);
      } catch (...) {
        std::lock_guard<std::mutex> error_lock(batch_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      ++context.jobs_run;
      std::lock_guard<std::mutex> count_lock(batch_mutex_);
      --remaining_;
    }

    lock.lock();
    if (--active_workers_ == 0 && remaining_ == 0) done_cv_.notify_all();
  }
}

void FleetRunner::run(std::size_t job_count, const Job& job) {
  std::unique_lock<std::mutex> lock(batch_mutex_);
  RDTGC_EXPECTS(job_ == nullptr);  // run() is not reentrant
  first_error_ = nullptr;
  if (job_count == 0) {
    ++batches_;
    return;
  }
  // Deal the jobs round-robin; length imbalance is the stealing's problem.
  for (std::size_t i = 0; i < job_count; ++i) {
    QueueShard& queue = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> queue_lock(queue.mutex);
    queue.jobs.push_back(i);
  }
  job_ = &job;
  remaining_ = job_count;
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();
  lock.lock();
  done_cv_.wait(lock, [&] { return remaining_ == 0 && active_workers_ == 0; });
  job_ = nullptr;
  ++batches_;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

FleetRunner::Stats FleetRunner::stats() const {
  Stats stats;
  stats.batches = batches_;
  for (const WorkerContext& context : contexts_) {
    stats.jobs += context.jobs_run;
    stats.steals += context.steals;
  }
  return stats;
}

}  // namespace rdtgc::harness
