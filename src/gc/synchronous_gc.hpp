// Synchronous (coordinated) garbage-collection baselines from the paper's
// related work (§5), used as comparison points for RDT-LGC:
//
//  * kWangTheorem1 — Wang, Chung, Lin & Fuchs [21]: a coordinator gathers
//    global dependency information and discards ALL obsolete checkpoints
//    (our implementation evaluates Theorem 1 on the recorded CCP, which is
//    the same characterization the paper derives from [21]).  Global bound:
//    n(n+1)/2 stored checkpoints.
//  * kRecoveryLine — Bhargava & Lian [5] / Elnozahy et al. [8]: compute the
//    recovery line for the failure of *all* processes and discard every
//    checkpoint strictly older than it.  Simple, but does not bound the
//    number of uncollected checkpoints.
//
// Both require process synchronization.  We idealize the snapshot: the
// coordinator reads a consistent cut instantaneously (the simulator's
// current state), which is the baselines' BEST case — the comparison is
// conservative in their favour.  Release notifications still pay a
// configurable latency, and control-message traffic is accounted
// (2n gather + n release per round).  Rounds whose target process rolled
// back between snapshot and apply are dropped: checkpoint indices are reused
// across rollbacks, so a stale round could otherwise collect a checkpoint of
// the new lineage.  (Eliminations themselves stay safe across normal
// execution because obsolete checkpoints remain obsolete — the paper's
// Claims 1 and 2.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causality/types.hpp"
#include "ccp/recorder.hpp"
#include "ckpt/node.hpp"
#include "sim/simulator.hpp"

namespace rdtgc::gc {

enum class SyncGcPolicy { kWangTheorem1, kRecoveryLine };

class SynchronousGcDriver {
 public:
  struct Config {
    SyncGcPolicy policy = SyncGcPolicy::kWangTheorem1;
    SimTime period = 200;        ///< time between collection rounds
    SimTime notify_delay = 10;   ///< snapshot -> elimination latency
  };

  struct Stats {
    std::uint64_t rounds = 0;
    std::uint64_t collected = 0;
    std::uint64_t control_messages = 0;
    std::uint64_t stale_rounds_dropped = 0;
  };

  SynchronousGcDriver(sim::Simulator& simulator, ccp::CcpRecorder& recorder,
                      std::vector<ckpt::Node*> nodes, Config config);

  /// Schedule periodic rounds until `until` (simulated time).
  void start(SimTime until);

  /// Run one round immediately (snapshot now, apply after notify_delay).
  void round();

  const Stats& stats() const { return stats_; }
  std::string name() const;

 private:
  /// Per process, the stored checkpoint indices the policy wants eliminated.
  std::vector<std::vector<CheckpointIndex>> plan_round() const;

  sim::Simulator& simulator_;
  ccp::CcpRecorder& recorder_;
  std::vector<ckpt::Node*> nodes_;
  Config config_;
  Stats stats_;
};

}  // namespace rdtgc::gc
