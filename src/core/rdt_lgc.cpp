#include "core/rdt_lgc.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rdtgc::core {

void RdtLgc::initialize(ProcessId self, std::size_t process_count,
                        ckpt::ShardedCheckpointStore& store) {
  RDTGC_EXPECTS(self >= 0 && static_cast<std::size_t>(self) < process_count);
  RDTGC_EXPECTS(!uc_.has_value());  // initialize exactly once
  self_ = self;
  n_ = process_count;
  store_ = &store;
  uc_.emplace(process_count, [this](CheckpointIndex index) {
    store_->collect(index);
    ++collected_;
  });
}

void RdtLgc::on_new_dependency(ProcessId j) {
  RDTGC_EXPECTS(uc_.has_value());
  RDTGC_EXPECTS(j != self_);
  // Algorithm 2, receive handler: p_j now denies collection of the last
  // stable checkpoint, which UC[self] always references.
  uc_->release(j);
  uc_->link(j, self_);
}

void RdtLgc::on_new_dependencies(std::span<const ProcessId> changed) {
  RDTGC_EXPECTS(uc_.has_value());
  // Algorithm 2, receive handler, coalesced: every changed peer now pins the
  // last stable checkpoint; rebind_to adjusts the CCB refcount by ±k in one
  // pass instead of k release+link pairs.
  uc_->rebind_to(changed, self_);
}

void RdtLgc::on_checkpoint_stored(CheckpointIndex index) {
  RDTGC_EXPECTS(uc_.has_value());
  // Algorithm 2, checkpoint handler.  The release may collect the previous
  // last checkpoint; the new one is already durably stored (the transient
  // n+1 occupancy of §4.5).
  uc_->release(self_);
  uc_->new_ccb(self_, index);
}

std::optional<CheckpointIndex> RdtLgc::latest_not_preceded(
    ProcessId f, IntervalIndex bound,
    const std::vector<CheckpointIndex>& stored,
    const std::vector<const causality::DependencyVector*>& dvs) const {
  RDTGC_ASSERT(!stored.empty() && stored.size() == dvs.size());
  if (search_ == RollbackSearch::kBinary) {
    // DV(s^γ)[f] is non-decreasing in γ: binary-search the boundary.
    std::size_t lo = 0, hi = stored.size();  // first position with dv >= bound
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if ((*dvs[mid])[f] < bound)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo == 0) return std::nullopt;
    return stored[lo - 1];
  }
  std::optional<CheckpointIndex> best;
  for (std::size_t k = 0; k < stored.size(); ++k)
    if ((*dvs[k])[f] < bound) best = stored[k];
  return best;
}

void RdtLgc::on_rollback(const ckpt::RollbackInfo& info,
                         const causality::DependencyVector& dv) {
  RDTGC_EXPECTS(uc_.has_value());
  RDTGC_EXPECTS(!info.li.has_value() || info.li->size() == n_);
  RDTGC_EXPECTS(store_->contains(info.restored_index));
  RDTGC_EXPECTS(store_->last_index() == info.restored_index);
  rebuild_from_store(info.li, dv);
}

void RdtLgc::on_attach(const causality::DependencyVector& dv) {
  RDTGC_EXPECTS(uc_.has_value());
  RDTGC_EXPECTS(store_->count() > 0);  // a warm start needs survivors
  RDTGC_EXPECTS(dv[self_] == store_->last_index() + 1);
  rebuild_from_store(std::nullopt, dv);
}

void RdtLgc::rebuild_from_store(
    const std::optional<std::vector<IntervalIndex>>& li,
    const causality::DependencyVector& dv) {
  // Algorithm 3 line 7: rebuild the CCBs from the surviving storage.
  // stored_indices() is the store's cached cross-shard merged view (no
  // per-call copy); `stored` and the `dvs` pointers are only valid until
  // drop_zero_count() below starts eliminating, which is after their last
  // use.
  uc_->clear();
  const std::vector<CheckpointIndex>& stored = store_->stored_indices();
  std::vector<const causality::DependencyVector*> dvs;
  dvs.reserve(stored.size());
  for (const CheckpointIndex g : stored) {
    uc_->add_ccb(g);
    dvs.push_back(&store_->get(g).dv);
  }

  // Lines 8-14: for every process f, find the checkpoint retained because of
  // f.  With global information, LI[f] = last_s(f)+1 in the recovery-line
  // cut; otherwise the causal-only variant substitutes DV (§4.3).
  for (ProcessId f = 0; f < static_cast<ProcessId>(n_); ++f) {
    const IntervalIndex li_f =
        li.has_value() ? (*li)[static_cast<std::size_t>(f)] : dv[f];
    // f pins a checkpoint iff s_f^last → v_i, i.e. LI[f] <= DV(v_i)[f]
    // (in the DV variant this reduces to Theorem 2's last_k_i(f) >= 0).
    if (li_f >= 1 && li_f <= dv[f]) {
      const std::optional<CheckpointIndex> g =
          latest_not_preceded(f, li_f, stored, dvs);
      if (g.has_value()) {
        uc_->reference(f, *g);
      } else {
        // Every candidate was already collected.  With global information
        // this cannot happen (the Theorem-1 pin is never obsolete, so it is
        // still stored); with the causal-only DV variant it means the
        // restored knowledge of f is stale — s_f^last does not actually
        // precede the restored state, so f truly pins nothing and leaving
        // UC[f] Null is safe.
        RDTGC_ASSERT(!li.has_value());
      }
    }
    // else: UC[f] stays Null (line 14).
  }

  // Lines 15-17: whatever no process pins is obsolete.
  uc_->drop_zero_count();
}

void RdtLgc::on_peer_recovery(const std::vector<IntervalIndex>& li,
                              const causality::DependencyVector& dv) {
  RDTGC_EXPECTS(uc_.has_value());
  RDTGC_EXPECTS(li.size() == n_);
  // §4.3: a process whose recovery-line component is its volatile state
  // releases every UC[f] with DV[f] < LI[f]: the last stable checkpoint of
  // p_f does not causally precede v_i, so nothing is retained because of f.
  for (ProcessId f = 0; f < static_cast<ProcessId>(n_); ++f) {
    if (f == self_) continue;  // UC[self] always pins the last checkpoint
    if (dv[f] < li[static_cast<std::size_t>(f)]) uc_->release(f);
  }
}

const UcTable& RdtLgc::uc() const {
  RDTGC_EXPECTS(uc_.has_value());
  return *uc_;
}

}  // namespace rdtgc::core
