#include "harness/sweep.hpp"

#include "util/check.hpp"

namespace rdtgc::harness {

std::vector<SweepRun> run_seed_sweep(FleetRunner& fleet,
                                     const std::vector<std::uint64_t>& seeds,
                                     const SweepBody& body) {
  RDTGC_EXPECTS(body != nullptr);
  std::vector<SweepRun> runs(seeds.size());
  fleet.run(seeds.size(), [&](std::size_t job, WorkerContext& worker) {
    // Job-indexed slot: no result ever crosses between jobs, so the only
    // thing scheduling can change is timing.
    runs[job] = body(seeds[job], worker);
    runs[job].seed = seeds[job];
  });
  return runs;
}

SweepSummary summarize_sweep(const std::vector<SweepRun>& runs) {
  SweepSummary summary;
  for (const SweepRun& run : runs) {
    summary.storage.merge(run.storage);
    summary.final_storage.add(run.final_storage);
    summary.collected.add(static_cast<double>(run.collected));
    summary.control_messages.add(static_cast<double>(run.control_messages));
    summary.forced_checkpoints.add(
        static_cast<double>(run.forced_checkpoints));
    ++summary.runs;
  }
  return summary;
}

std::vector<std::uint64_t> seed_range(std::uint64_t base, std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t k = 0; k < count; ++k) seeds[k] = base + k;
  return seeds;
}

}  // namespace rdtgc::harness
